module Id = Rofl_idspace.Id
module Prng = Rofl_util.Prng
module Pool = Rofl_util.Pool
module Graph = Rofl_topology.Graph
module Linkstate = Rofl_linkstate.Linkstate
module Engine = Rofl_netsim.Engine
module Shard = Rofl_netsim.Shard
module Metrics = Rofl_netsim.Metrics
module Identity = Rofl_crypto.Identity

type pointer = Id.t * int (* identifier, hosting router *)

(* Per-router conduct policy.  Honest routers run the protocol; the rest
   model the paper's threat surface.  Behaviours only change what a router
   *says* in its own execution context — they never reach across shards —
   so campaigns stay byte-identical at any shard count. *)
type behaviour =
  | Honest
  | Drop_lookups  (** byzantine silence: swallow every lookup it handles *)
  | Misroute      (** answer lookups with its own best resident as "owner" *)
  | Poison_succs  (** prepend fabricated backups to stabilisation replies,
                      and vouch for those ghosts when they are probed *)

type config = {
  stabilize_period_ms : float;
  succ_list_len : int;
  rpc_timeout_ms : float;
  rpc_retries : int;
  rpc_backoff : float;
  pred_timeout_ms : float;
  join_timeout_ms : float;
  join_retries : int;
  lookup_timeout_ms : float;
  lookup_retries : int;
  stuck_wait_ms : float;
  stuck_wait_limit : int;
  untwist : bool;
  lookup_alpha : int;
  pcache_capacity : int;
  pcache_refresh_ttl_ms : float;
  pcache_refresh_budget : int;
  stabilize_auto : bool;
  verify_joins : bool;
      (** challenge/response identifier verification at the join gateway and
          on successor-list failover promotion (paper §2.1 self-certifying
          labels).  On by default; the off position exists for the attack
          lab's defense-off cells and for measuring verification cost. *)
  succ_quota : int;
      (** declared per-PoP share of *admitted* (joined) entries in a
          successor-list backup tail (and of pointer-cache admissions);
          infrastructure entries — a router's own label hosted at itself —
          are exempt.  0 = no quota rule.  The rule is what the doctor's
          eclipse-saturation check audits; whether the protocol also
          *enforces* it is [quota_enforce]. *)
  quota_enforce : bool;
      (** enforce [succ_quota] at every successor-list adoption and
          pointer-cache admission (the Kademlia IP-group-quota defense,
          keyed by PoP).  Meaningless unless [succ_quota > 0] and the
          instance was created with router groups. *)
}

let default_config =
  {
    stabilize_period_ms = 50.0;
    succ_list_len = 4;
    rpc_timeout_ms = 100.0;
    rpc_retries = 2;
    rpc_backoff = 2.0;
    pred_timeout_ms = 600.0;
    join_timeout_ms = 400.0;
    join_retries = 4;
    lookup_timeout_ms = 300.0;
    lookup_retries = 3;
    stuck_wait_ms = 5.0;
    stuck_wait_limit = 3;
    untwist = true;
    lookup_alpha = 1;
    pcache_capacity = 0;
    pcache_refresh_ttl_ms = 400.0;
    pcache_refresh_budget = 4;
    stabilize_auto = false;
    verify_joins = true;
    succ_quota = 0;
    quota_enforce = false;
  }

type message =
  | Join_req of {
      joining : Id.t;
      gateway : int;
      chasing : pointer option; (** the candidate this request is committed to *)
      avoid : Id.t list;        (** candidates found dead by this request *)
      waited : int;             (** consecutive waits for a mid-join candidate *)
    }
  | Join_resp of {
      joining : Id.t;
      pred : pointer;
      succ : pointer option;
      succ_list : pointer list;
    }
  | Get_pred of { asker : Id.t; asker_router : int; target : Id.t; token : int }
  | Pred_info of {
      of_id : Id.t;
      pred : pointer option;
      succ_list : pointer list; (* the probed member's own succ :: backups *)
      to_id : Id.t;
      token : int;
    }
  | Notify of { candidate : Id.t; candidate_router : int; target : Id.t }
  | Leave_pred of {
      departing : Id.t;
      to_id : Id.t;
      new_succ : pointer option;
      new_succ_list : pointer list;
    }
  | Leave_succ of { departing : Id.t; to_id : Id.t; new_pred : pointer option }
  | Lookup_req of {
      target : Id.t;
      origin : int;
      token : int;
      chasing : pointer option;
      avoid : Id.t list;
      waited : int;
      hops : int; (** link traversals charged to this branch so far *)
    }
  | Lookup_resp of { token : int; owner : pointer option; hops : int }
  | Verify_req of {
      claimant : Id.t;        (** identifier whose residency is challenged *)
      asker_router : int;
      token : int;
      challenge : Identity.challenge;
    }
  | Verify_resp of { token : int; resp : Identity.response option }

type stats = {
  messages : int;
  joins_completed : int;
  stabilize_rounds : int;
  joins_failed : int;
  leaves_completed : int;
  moves_completed : int;
  crashes : int;
  failovers : int;
  rpc_timeouts : int;
  join_retries : int;
  lookup_retries : int;
  join_rejects : int;
  promo_rejects : int;
}

type lookup_outcome = {
  target : Id.t;
  issued_ms : float;
  completed_ms : float;
  ok : bool;
  attempts : int;
}

type join_state = { gateway : int; mutable join_attempts : int; mutable completed : bool }

type lookup_state = {
  origin : int;
  lk_target : Id.t;
  lk_issued : float;
  mutable lk_attempts : int;
  mutable lk_token : int;      (* primary-branch token of the current attempt *)
  mutable lk_tokens : int list; (* all branch tokens of the current attempt *)
  mutable lk_outstanding : int; (* branches not yet answered this attempt *)
  mutable finished : bool;
  cb : lookup_outcome -> unit;
}

(* ---- per-router pointer cache -------------------------------------------

   A flat fixed-capacity cache of owner pointers learned from lookup
   responses: (identifier, hosting router, install time).  Deliberately not
   [Rofl_core.Pointer_cache] — the α engine needs entry ages for the refresh
   manager and allocation-free linear probes, and at the capacities used
   here (tens of entries) a flat scan beats the ordered index.  Each cache
   belongs to one router and is only mutated from that router's execution
   context, so it shards exactly like the resident store. *)

module Pcache = struct
  type t = {
    cap : int;
    ids : Id.t array;
    routers : int array;
    stamp : float array;
    mutable len : int;
    quota : int;        (* max entries per router group, 0 = unbounded *)
    groups : int array; (* router -> group, [||] = ungrouped *)
  }

  let create ?(quota = 0) ?(groups = [||]) cap dummy =
    {
      cap;
      ids = Array.make (max cap 1) dummy;
      routers = Array.make (max cap 1) (-1);
      stamp = Array.make (max cap 1) 0.0;
      len = 0;
      quota;
      groups;
    }

  let find c id =
    let rec go i = if i >= c.len then -1 else if Id.equal c.ids.(i) id then i else go (i + 1) in
    go 0

  (* Would admitting a pointer hosted at [router] keep its group within the
     quota?  [except] is a slot about to be vacated (eviction or update) and
     is not counted.  Linear over the cache — tens of entries. *)
  let admit_ok c ~except router =
    c.quota <= 0 || Array.length c.groups = 0
    ||
    let g = c.groups.(router) in
    let cnt = ref 0 in
    for j = 0 to c.len - 1 do
      if j <> except && c.groups.(c.routers.(j)) = g then incr cnt
    done;
    !cnt < c.quota

  let group_quota_ok c =
    c.quota <= 0 || Array.length c.groups = 0
    ||
    let ok = ref true in
    for i = 0 to c.len - 1 do
      let g = c.groups.(c.routers.(i)) in
      let cnt = ref 0 in
      for j = 0 to c.len - 1 do
        if c.groups.(c.routers.(j)) = g then incr cnt
      done;
      if !cnt > c.quota then ok := false
    done;
    !ok

  (* Evict the oldest entry (lowest stamp, ties to the lowest index) — a
     deterministic stand-in for LRU that needs no recency links.  With a
     group quota, admissions that would over-concentrate one group are
     refused outright (the Kademlia IP-quota rule): concentration is the
     attack, so a full group keeps its existing entries rather than churn
     them for the newcomer. *)
  let insert c ~now id router =
    if c.cap > 0 then begin
      let i = find c id in
      if i >= 0 then begin
        if c.routers.(i) = router || admit_ok c ~except:i router then begin
          c.routers.(i) <- router;
          c.stamp.(i) <- now
        end
      end
      else begin
        let slot =
          if c.len < c.cap then c.len
          else begin
            let oldest = ref 0 in
            for j = 1 to c.len - 1 do
              if c.stamp.(j) < c.stamp.(!oldest) then oldest := j
            done;
            !oldest
          end
        in
        let except = if c.len < c.cap then -1 else slot in
        if admit_ok c ~except router then begin
          if c.len < c.cap then c.len <- c.len + 1;
          c.ids.(slot) <- id;
          c.routers.(slot) <- router;
          c.stamp.(slot) <- now
        end
      end
    end

  let remove_at c i =
    (* Shift down to keep scan order deterministic under refreshes. *)
    for j = i to c.len - 2 do
      c.ids.(j) <- c.ids.(j + 1);
      c.routers.(j) <- c.routers.(j + 1);
      c.stamp.(j) <- c.stamp.(j + 1)
    done;
    c.len <- c.len - 1

  (* The cached identifier closest to [target] (clockwise from the entry to
     the target), i.e. the best diversified start for a greedy walk.
     Returns the entry index, or -1.  Allocation-free. *)
  let best_toward c ~target =
    let best = ref (-1) in
    for i = 0 to c.len - 1 do
      if
        !best < 0
        || Id.compare_dist c.ids.(i) target c.ids.(!best) target < 0
      then best := i
    done;
    !best
end

(* ---- stale-successor oracle: logged events, replayed at sync points ----

   The seed instrumented stale windows inline: an O(residents) sweep at
   every departure and a membership probe at every pointer write.  Both
   reach across the whole simulation and would race under sharding, so each
   shard instead appends repoint/join facts to a private log and departures
   are recorded globally; [sync_oracle] merges the logs in a K-independent
   order (time, then join < repoint < departure, then identifier) and
   replays the seed's marking rules over a compact mirror of the ring. *)

type oev =
  | O_join of float * Id.t
  | O_repoint of float * Id.t * Id.t option (* holder, new successor id *)
  | O_raw of float * Id.t * Id.t option     (* injected fault: never closes *)

type rstate = {
  mutable o_mem : bool;
  mutable o_succ : Id.t option;
  mutable o_pointed : Id.t list; (* holders whose successor pointer is this id *)
  mutable o_ever : bool;
      (* ever admitted as a member (bootstrap or a join that was accepted).
         Set directly from global context at admission, not via the logs:
         a spliced-but-unacknowledged join must already count, or the
         doctor's poison-residency check would flag in-flight joins.
         Fabricated successor-list entries never pass through admission,
         so [o_ever = false] on a pointed-at identifier is attack evidence. *)
}

type oracle = {
  ostates : (Id.t, rstate) Hashtbl.t;
  omarks : (Id.t, float) Hashtbl.t; (* holder -> stale since *)
  mutable owindows : float list;    (* closed durations, newest first *)
}

(* ---- per-shard state ----------------------------------------------------

   Everything a shard's events touch lives here: the resident store for its
   routers, the id -> slot index, a private link-state view (its Dijkstra
   caches are mutable), metrics, RPC state tables and counters.  Counter
   values are sums of per-event increments, so aggregating them over shards
   is partition-independent; tokens only ever meet their own shard's
   tables. *)

(* An in-flight failover-promotion verification: the challenged candidate,
   the challenge sent, and the continuation to run on the verdict.  Lives in
   the asker's shard, keyed by token like the other RPC tables. *)
type verify_state = {
  v_claimed : Id.t;
  v_challenge : Identity.challenge;
  mutable v_done : bool;
  v_k : bool -> unit;
}

type shard_state = {
  sx : int;
  store : Store.t;
  where : (Id.t, int) Hashtbl.t; (* id -> slot, for residents of this shard *)
  s_ls : Linkstate.t;
  s_metrics : Metrics.t;
  probes : (int, unit) Hashtbl.t; (* outstanding stabilisation RPC tokens *)
  joins : (Id.t, join_state) Hashtbl.t;
  lookups : (int, lookup_state) Hashtbl.t;
  verifies : (int, verify_state) Hashtbl.t;
  mutable olog : oev list; (* oracle events, newest first *)
  mutable next_token : int;
  mutable msg_count : int;
  mutable joins_done : int;
  mutable joins_failed : int;
  mutable failovers : int;
  mutable rpc_timeouts : int;
  mutable join_retries : int;
  mutable lookup_retries : int;
  mutable lookups_open : int;
  mutable join_rejects : int;
  mutable promo_rejects : int;
}

type t = {
  graph : Graph.t;
  cfg : config;
  coord : Shard.t;
  nshards : int;
  shard_of : int array; (* router -> shard, contiguous ranges *)
  (* Per-router monotone sequence counters: every scheduled event is keyed
     by (time, acting router, seq), so the merged execution order is a
     function of the workload alone, not of the shard count. *)
  rails : int array;
  sh : shard_state array;
  pool : Pool.t option;
  oracle : oracle;
  pcaches : Pcache.t array; (* per router; [||] when the cache is disabled *)
  behaviours : behaviour array; (* per router; mutate from global context only *)
  groups : int array; (* router -> PoP/AS group for quotas; [||] = ungrouped *)
  (* Identifiers admitted although their claim would not have survived
     verification (only possible with [verify_joins = false]) — the
     forged-admission audit's ground truth.  Written from global context
     (join/admission) only; read anywhere. *)
  tainted : (Id.t, unit) Hashtbl.t;
  (* Credential presented at admission, so the hosting router can answer
     promotion challenges for its residents.  Bootstrap labels fall back to
     the canonical credential.  Written from global context only. *)
  creds : (Id.t, Identity.keypair) Hashtbl.t;
  mutable departs : (float * Id.t) list; (* oracle: departures, newest first *)
  mutable stab_on : bool;
  mutable rounds : int;
  mutable leaves_done : int;
  mutable moves_done : int;
  mutable crashes_done : int;
  (* Self-tuning stabilisation (auto mode): the network-size estimate, the
     EWMA churn-rate estimate it is normalised by, and the derived knobs. *)
  mutable auto_nhat : float;     (* median per-resident N estimate *)
  mutable auto_rate : float;     (* EWMA deaths per member per ms *)
  mutable auto_mult : float;     (* period multiplier, 1..16 *)
  mutable auto_sl_limit : int;   (* successor-list backup target *)
  mutable auto_last_deaths : int;
  mutable auto_last_ms : float;
  mutable auto_rounds : int;
  mutable refresh_on : bool;
}

(* Deterministic, well-spread default identifier per router.  A seeded PRNG
   draw keeps this library independent of rofl_crypto. *)
let router_label i =
  let g = Prng.create (0x5EED + i) in
  Id.random g

(* ---- shard plumbing ----------------------------------------------------- *)

let shd t router = t.sh.(t.shard_of.(router))

(* Simulated time in the calling context: the clock of the engine owning
   [router]'s shard — the event's own time inside a window, the merged
   barrier clock from global context (all engines parked there). *)
let now_at t router = Engine.now (Shard.engine t.coord t.shard_of.(router))

let fresh_token sh =
  let tok = sh.next_token in
  sh.next_token <- tok + 1;
  tok

(* Schedule [f] at [router]'s shard under the content-derived key
   [(time, rail, seq)].  [rail] must be the router in whose execution
   context this call is made (the acting router), so its sequence counter
   is bumped in a deterministic, K-independent order. *)
let sched t ~rail ~at ~time_ms f =
  let seq = t.rails.(rail) in
  t.rails.(rail) <- seq + 1;
  Shard.send t.coord ~src:t.shard_of.(rail) ~dst:t.shard_of.(at) ~time_ms ~rail
    ~seq f

let find_slot t router rid =
  let sh = shd t router in
  match Hashtbl.find_opt sh.where rid with
  | Some s when Store.owner sh.store s = router -> Some s
  | Some _ | None -> None

let locate_slot t rid =
  let k = Array.length t.sh in
  let rec go i =
    if i >= k then None
    else
      match Hashtbl.find_opt t.sh.(i).where rid with
      | Some s -> Some (t.sh.(i), s)
      | None -> go (i + 1)
  in
  go 0

let is_member t rid = locate_slot t rid <> None

(* ---- construction ------------------------------------------------------- *)

let create ~rng ?(cfg = default_config) ?(shards = 1) ?pool ?(bootstrap_hosts = 0)
    ?(lookup_hint = 0) ?(groups = [||]) ?behaviours graph =
  if shards < 1 then invalid_arg "Proto.create: shards must be >= 1";
  if bootstrap_hosts < 0 then invalid_arg "Proto.create: bootstrap_hosts < 0";
  let n = Graph.n graph in
  if Array.length groups <> 0 && Array.length groups <> n then
    invalid_arg "Proto.create: groups must have one entry per router";
  (match behaviours with
   | Some b when Array.length b <> n ->
     invalid_arg "Proto.create: behaviours must have one entry per router"
   | _ -> ());
  let k = max 1 (min shards n) in
  let shard_of = Array.init n (fun r -> min (r * k / n) (k - 1)) in
  (* Conservative window: no message can cross shards faster than the
     cheapest partition-crossing link. *)
  let window =
    if k = 1 then infinity
    else begin
      let w = ref infinity in
      Graph.iter_links graph (fun { Graph.u; v; latency_ms } ->
          if shard_of.(u) <> shard_of.(v) && latency_ms < !w then w := latency_ms);
      !w
    end
  in
  if k > 1 && not (window > 0.0) then
    invalid_arg "Proto.create: cross-shard links must have positive latency";
  (* Bootstrap membership: one default identifier per router, plus
     [bootstrap_hosts] extra hosts placed uniformly — drawn before any shard
     state exists, so placement is identical at every shard count. *)
  let seen = Hashtbl.create (2 * (n + bootstrap_hosts)) in
  let boot = ref [] in
  for router = 0 to n - 1 do
    let rid = router_label router in
    Hashtbl.replace seen rid ();
    boot := (rid, router) :: !boot
  done;
  let added = ref 0 in
  while !added < bootstrap_hosts do
    let rid = Id.random rng in
    if not (Hashtbl.mem seen rid) then begin
      Hashtbl.replace seen rid ();
      boot := (rid, Prng.int rng n) :: !boot;
      incr added
    end
  done;
  let per_shard = ((n + bootstrap_hosts) / k) + 1 in
  (* Auto mode sizes successor-list headroom from the bootstrap population:
     the per-resident target is ~log2(N̂), so give the store room to grow
     lists beyond the static knob as estimates come in. *)
  let cap_list =
    let static = max 0 (cfg.succ_list_len - 1) in
    if not cfg.stabilize_auto then static
    else
      let m = float_of_int (n + bootstrap_hosts + 1) in
      max static (int_of_float (ceil (log m /. log 2.0)))
  in
  let sh =
    Array.init k (fun sx ->
        {
          sx;
          store =
            Store.create ~routers:n ~cap_list ~hint:(2 * per_shard)
              ~dummy:(router_label 0);
          where = Hashtbl.create (max 16 (2 * per_shard));
          s_ls = Linkstate.create graph;
          s_metrics = Metrics.create ~routers:n;
          probes = Hashtbl.create (max 64 per_shard);
          joins = Hashtbl.create 16;
          lookups = Hashtbl.create (max 16 lookup_hint);
          verifies = Hashtbl.create 16;
          olog = [];
          next_token = 0;
          msg_count = 0;
          joins_done = 0;
          joins_failed = 0;
          failovers = 0;
          rpc_timeouts = 0;
          join_retries = 0;
          lookup_retries = 0;
          lookups_open = 0;
          join_rejects = 0;
          promo_rejects = 0;
        })
  in
  let t =
    {
      graph;
      cfg;
      coord = Shard.create ?pool ~shards:k ~window_ms:window ();
      nshards = k;
      shard_of;
      rails = Array.make n 0;
      sh;
      pool;
      oracle =
        {
          ostates = Hashtbl.create (2 * (n + bootstrap_hosts));
          omarks = Hashtbl.create 16;
          owindows = [];
        };
      pcaches =
        (if cfg.pcache_capacity > 0 then begin
           let quota = if cfg.quota_enforce then cfg.succ_quota else 0 in
           Array.init n (fun _ ->
               Pcache.create ~quota ~groups cfg.pcache_capacity (router_label 0))
         end
         else [||]);
      behaviours =
        (match behaviours with Some b -> Array.copy b | None -> Array.make n Honest);
      groups;
      tainted = Hashtbl.create 16;
      creds = Hashtbl.create 64;
      departs = [];
      stab_on = false;
      rounds = 0;
      leaves_done = 0;
      moves_done = 0;
      crashes_done = 0;
      auto_nhat = 0.0;
      auto_rate = 0.0;
      auto_mult = 1.0;
      auto_sl_limit = max 0 (cfg.succ_list_len - 1);
      auto_last_deaths = 0;
      auto_last_ms = 0.0;
      auto_rounds = 0;
      refresh_on = false;
    }
  in
  (* Bootstrap shortcut: the identifier ring is spliced locally at time zero
     (the synchronous simulation charges this as the §3.1 flood; here we
     start from its outcome and let everything AFTER happen by message). *)
  let arr =
    List.sort (fun (a, _) (b, _) -> Id.compare a b) !boot |> Array.of_list
  in
  let m = Array.length arr in
  Array.iteri
    (fun i (rid, router) ->
      let shx = sh.(shard_of.(router)) in
      let s = Store.alloc shx.store ~router rid in
      Store.set_succ shx.store s (Some arr.((i + 1) mod m));
      Store.set_pred shx.store s (Some arr.((i + m - 1) mod m));
      Store.set_succ_list shx.store s
        (List.init
           (min (cfg.succ_list_len - 1) (max 0 (m - 2)))
           (fun j -> arr.((i + 2 + j) mod m)));
      Hashtbl.replace shx.where rid s)
    arr;
  Array.iteri
    (fun i (rid, _) ->
      Hashtbl.replace t.oracle.ostates rid
        { o_mem = true; o_succ = Some (fst arr.((i + 1) mod m)); o_pointed = [];
          o_ever = true })
    arr;
  Array.iteri
    (fun i (rid, _) ->
      let sid, _ = arr.((i + 1) mod m) in
      let st = Hashtbl.find t.oracle.ostates sid in
      st.o_pointed <- rid :: st.o_pointed)
    arr;
  t

let coordinator t = t.coord

let shard_count t = t.nshards

let shard_of_router t router = t.shard_of.(router)

let metrics t =
  let m = Metrics.create ~routers:(Graph.n t.graph) in
  Array.iter (fun sh -> Metrics.merge_into ~dst:m sh.s_metrics) t.sh;
  m

let config t = t.cfg

let lookups_outstanding t =
  Array.fold_left (fun acc sh -> acc + sh.lookups_open) 0 t.sh

(* ---- oracle replay ------------------------------------------------------ *)

let ostate t id =
  match Hashtbl.find_opt t.oracle.ostates id with
  | Some st -> st
  | None ->
    let st = { o_mem = false; o_succ = None; o_pointed = []; o_ever = false } in
    Hashtbl.replace t.oracle.ostates id st;
    st

(* Was this identifier ever admitted (bootstrap, or a join that passed the
   gateway)?  No oracle sync needed: admission marks the bit directly from
   global context.  A pointed-at identifier that was never admitted can only
   come from a fabricated protocol message — the poison-residency signal. *)
let ever_member t id =
  match Hashtbl.find_opt t.oracle.ostates id with
  | Some st -> st.o_ever
  | None -> false

let o_unpoint t holder =
  let hst = ostate t holder in
  (match hst.o_succ with
   | Some old ->
     let ost = ostate t old in
     ost.o_pointed <- List.filter (fun h -> not (Id.equal h holder)) ost.o_pointed
   | None -> ());
  hst.o_succ <- None

let o_point t holder succ =
  o_unpoint t holder;
  (ostate t holder).o_succ <- succ;
  match succ with
  | Some s ->
    let ost = ostate t s in
    ost.o_pointed <- holder :: ost.o_pointed
  | None -> ()

(* A holder whose successor pointer names a departed identifier is "stale"
   from the departure until the pointer is repointed at a live member. *)
let o_depart t time id =
  let st = ostate t id in
  st.o_mem <- false;
  Hashtbl.remove t.oracle.omarks id;
  o_unpoint t id;
  List.iter
    (fun h ->
      if not (Hashtbl.mem t.oracle.omarks h) then
        Hashtbl.replace t.oracle.omarks h time)
    st.o_pointed

let o_repoint t time holder succ =
  o_point t holder succ;
  match succ with
  | Some s when (ostate t s).o_mem -> (
    match Hashtbl.find_opt t.oracle.omarks holder with
    | Some since ->
      t.oracle.owindows <- (time -. since) :: t.oracle.owindows;
      Hashtbl.remove t.oracle.omarks holder
    | None -> ())
  | Some _ | None -> ()

(* Merge the shard logs and the departure log into one chronological stream
   and replay it.  The order is K-independent: time first, joins before
   repoints before departures at one instant, identifiers and per-stream
   positions after that (one identifier's events never tie across shards —
   a rejoin elsewhere always completes strictly later than the departure). *)
let sync_oracle t =
  if t.departs <> [] || Array.exists (fun sh -> sh.olog <> []) t.sh then begin
    let entries = ref [] in
    Array.iteri
      (fun sx sh ->
        List.iteri
          (fun pos ev ->
            let time, rank, id =
              match ev with
              | O_join (tm, id) -> (tm, 0, id)
              | O_repoint (tm, id, _) | O_raw (tm, id, _) -> (tm, 1, id)
            in
            entries := (time, rank, id, sx, pos, Some ev) :: !entries)
          (List.rev sh.olog);
        sh.olog <- [])
      t.sh;
    List.iteri
      (fun pos (tm, id) -> entries := (tm, 2, id, -1, pos, None) :: !entries)
      (List.rev t.departs);
    t.departs <- [];
    let cmp (t1, r1, i1, s1, p1, _) (t2, r2, i2, s2, p2, _) =
      let c = Float.compare t1 t2 in
      if c <> 0 then c
      else
        let c = Int.compare r1 r2 in
        if c <> 0 then c
        else
          let c = Id.compare i1 i2 in
          if c <> 0 then c
          else
            let c = Int.compare s1 s2 in
            if c <> 0 then c else Int.compare p1 p2
    in
    List.iter
      (fun (tm, _, id, _, _, ev) ->
        match ev with
        | Some (O_join _) -> (ostate t id).o_mem <- true
        | Some (O_repoint (_, _, succ)) -> o_repoint t tm id succ
        | Some (O_raw (_, _, succ)) -> o_point t id succ
        | None -> o_depart t tm id)
      (List.sort cmp !entries)
  end

let stale_windows t =
  sync_oracle t;
  List.rev t.oracle.owindows

let stale_open t =
  sync_oracle t;
  Hashtbl.length t.oracle.omarks

let stale_open_since t =
  sync_oracle t;
  Hashtbl.fold (fun rid since acc -> (rid, since) :: acc) t.oracle.omarks []
  |> List.sort (fun (a, _) (b, _) -> Id.compare a b)

(* Every successor-pointer write funnels through here so the oracle log
   mirrors the actual ring. *)
let repoint t ~router s ptr =
  let sh = shd t router in
  sh.olog <-
    O_repoint (now_at t router, Store.rid sh.store s, Option.map fst ptr)
    :: sh.olog;
  Store.set_succ sh.store s ptr

(* ---- message transport -------------------------------------------------- *)

let truncate_list n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

(* Successor lists must hold pairwise-distinct entries in strictly increasing
   clockwise distance from their holder, never the holder itself and never
   the current successor (which rides in [succ], not the backup tail).

   Inherited lists do not arrive that way: a departing member's backups are
   ordered around *its* position, not the adopter's, and in small rings they
   can even contain the adopter.  Every adoption site funnels through this
   normaliser: drop self/succ, dedup, re-sort by distance from the new
   holder, truncate. *)
let succ_list_limit t =
  if t.cfg.stabilize_auto then t.auto_sl_limit else t.cfg.succ_list_len - 1

(* Diversity quota on the backup tail (the Kademlia IP-group-quota pattern,
   group = PoP): keep at most [succ_quota] *admitted* entries per
   hosting-router group, closest entries first.  Runs before truncation so
   entries rejected for concentration make room for farther, more diverse
   backups.  Two exemptions: the successor itself rides in [succ], outside
   the tail, and is never counted — quotas must not be able to reject the
   one true successor; and infrastructure entries (a router's own label,
   hosted at itself) pass uncounted, because their ring placement is the
   operator's topology, not an admission an attacker can mint — small rings
   legitimately have same-PoP label runs. *)
let quota_filter t entries =
  if t.cfg.succ_quota <= 0 || (not t.cfg.quota_enforce) || Array.length t.groups = 0
  then entries
  else begin
    let counts = Hashtbl.create 8 in
    List.filter
      (fun (i, r) ->
        Id.equal i (router_label r)
        ||
        let g = t.groups.(r) in
        let c = match Hashtbl.find_opt counts g with Some c -> c | None -> 0 in
        if c >= t.cfg.succ_quota then false
        else begin
          Hashtbl.replace counts g (c + 1);
          true
        end)
      entries
  end

let normalize_succ_list t ~self ?succ entries =
  entries
  |> List.filter (fun (i, _) ->
         (not (Id.equal i self))
         && (match succ with Some s -> not (Id.equal i s) | None -> true))
  |> List.sort_uniq (fun (a, _) (b, _) -> Id.compare_dist self a self b)
  |> quota_filter t
  |> truncate_list (succ_list_limit t)

(* Deliver a message to a router after traversing the physical path there,
   charging one message per link under [cat].  A cross-shard destination is
   reached over at least one partition-crossing link, so the delivery time
   is at least the conservative window after now — the invariant the shard
   coordinator's barriers rely on. *)
let send_direct t ~cat ~from ~dest msg k =
  let sh = shd t from in
  match Linkstate.path sh.s_ls from dest with
  | None -> ()
  | Some hops ->
    let links = List.length hops - 1 in
    sh.msg_count <- sh.msg_count + max links 0;
    Metrics.incr sh.s_metrics cat (max links 0);
    let latency =
      let rec go acc = function
        | a :: (b :: _ as rest) -> go (acc +. Graph.latency t.graph a b) rest
        | [ _ ] | [] -> acc
      in
      go 0.0 hops
    in
    sched t ~rail:from ~at:dest ~time_ms:(now_at t from +. latency) (fun () ->
        k msg)

(* Best local knowledge at a router for a target: closest identifier (its
   own residents and their successor pointers) not past the target. *)
let best_candidate t router ~target ?(exclude = []) () =
  let sh = shd t router in
  let store = sh.store in
  let best = ref None in
  let consider id where =
    if not (List.exists (Id.equal id) exclude) then begin
      match !best with
      | Some (bid, _) when not (Id.closer_clockwise ~target id bid) -> ()
      | Some _ | None -> best := Some (id, where)
    end
  in
  Store.iter_router store router (fun s ->
      consider (Store.rid store s) `Here;
      let srouter = Store.succ_router store s in
      if srouter >= 0 && srouter <> router then
        consider (Store.succ_rid store s) (`Remote srouter));
  !best

let pcache_insert t router id orouter =
  if Array.length t.pcaches > 0 then
    Pcache.insert t.pcaches.(router) ~now:(now_at t router) id orouter

let latency_between t a b =
  if a = b then 0.0
  else begin
    let d = Linkstate.distance_to_nan (shd t a).s_ls a b in
    if Float.is_nan d then 0.0 else d
  end

let link_hops_between t a b =
  if a = b then 0
  else begin
    let h = Linkstate.distance_hops_count (shd t a).s_ls a b in
    if h < 0 then 0 else h
  end

(* ---- diversified branch starts ------------------------------------------

   Start routers for the extra branches of an α-parallel lookup, drawn from
   the origin router's local state in a fixed order — pointer-cache best
   match toward the target, then successor-list backup routers of the
   origin's residents (chain order), then predecessor routers ("external
   hosts" behind the origin on the ring).  Deduplicated against the origin
   and each other; the draw order IS the branch index, and every tie
   between branches resolves to the lowest branch index, so α results are a
   function of the workload alone.  Writes at most [max_extra] routers into
   [out.(pos..)] and returns how many it wrote.  Traverses the resident
   chains directly (no visitor closures); the only per-call allocation is
   the cursor cell. *)

let branch_starts_into t ~from ~target ~out ~pos ~max_extra =
  if max_extra <= 0 then 0
  else begin
    let stop = pos + max_extra in
    let cursor = ref pos in
    let scan = ref pos in
    let push r =
      if r >= 0 && r <> from && !cursor < stop then begin
        scan := pos;
        while !scan < !cursor && out.(!scan) <> r do
          incr scan
        done;
        if !scan = !cursor then begin
          out.(!cursor) <- r;
          incr cursor
        end
      end
    in
    if Array.length t.pcaches > 0 then begin
      let c = t.pcaches.(from) in
      let i = Pcache.best_toward c ~target in
      if i >= 0 then push c.Pcache.routers.(i)
    end;
    let store = (shd t from).store in
    let s = ref (Store.chain_head store from) in
    while !s >= 0 && !cursor < stop do
      let len = Store.succ_list_len store !s in
      let k = ref 0 in
      while !k < len && !cursor < stop do
        push (Store.succ_list_router store !s !k);
        incr k
      done;
      s := Store.chain_next store !s
    done;
    s := Store.chain_head store from;
    while !s >= 0 && !cursor < stop do
      push (Store.pred_router_raw store !s);
      s := Store.chain_next store !s
    done;
    !cursor - pos
  end

(* ---- joins -------------------------------------------------------------- *)

(* Greedy per-hop forwarding of a join request.  Each router re-evaluates on
   receipt (one link traversal per event) but the request stays committed to
   the closest candidate seen so far, so transit routers with worse local
   knowledge cannot make it oscillate.  Candidates that stay absent past the
   wait budget (crashed mid-chase) are added to [avoid] and the chase
   restarts without them; the gateway-side join timer is the backstop. *)
let rec forward_join t ~at (m : message) =
  match m with
  | Join_req { joining; gateway; chasing; avoid; waited } ->
    let sh = shd t at in
    let exclude = joining :: avoid in
    let local = best_candidate t at ~target:joining ~exclude () in
    let improves id =
      match chasing with
      | None -> true
      | Some (cid, _) -> Id.closer_clockwise ~target:joining id cid
    in
    let restart_without dead =
      forward_join t ~at
        (Join_req { joining; gateway; chasing = None; avoid = dead :: avoid; waited = 0 })
    in
    let splice best_id =
      match find_slot t at best_id with
      | None ->
        if waited < t.cfg.stuck_wait_limit then
          (* The candidate may be mid-join: its resident state materialises
             when its own Join_resp lands.  Wait briefly and retry. *)
          sched t ~rail:at ~at ~time_ms:(now_at t at +. t.cfg.stuck_wait_ms)
            (fun () ->
              forward_join t ~at
                (Join_req
                   { joining; gateway; chasing = Some (best_id, at); avoid; waited = waited + 1 }))
        else
          (* Still absent: treat as dead and re-chase without it. *)
          restart_without best_id
      | Some s when
          Store.succ_router sh.store s >= 0
          && Id.equal (Store.succ_rid sh.store s) joining ->
        (* A retried request re-spliced where the first one already did:
           nothing to do — the gateway ignores duplicate responses, and a
           genuinely lost response is covered by the join timer. *)
        ()
      | Some s ->
        (* The closest known identifier: the predecessor.  Splice. *)
        let rid = Store.rid sh.store s in
        let old_succ = Store.succ sh.store s in
        let old_list = Store.succ_list sh.store s in
        repoint t ~router:at s (Some (joining, gateway));
        Store.set_succ_list sh.store s
          (normalize_succ_list t ~self:rid ~succ:joining
             (match old_succ with Some p -> p :: old_list | None -> old_list));
        send_direct t ~cat:"join" ~from:at ~dest:gateway
          (Join_resp { joining; pred = (rid, at); succ = old_succ; succ_list = old_list })
          (handle t gateway)
    in
    let hop_towards dest m' =
      match Linkstate.next_hop sh.s_ls at dest with
      | None -> ()
      | Some hop ->
        sh.msg_count <- sh.msg_count + 1;
        Metrics.incr sh.s_metrics "join" 1;
        sched t ~rail:at ~at:hop
          ~time_ms:(now_at t at +. Graph.latency t.graph at hop)
          (fun () -> forward_join t ~at:hop m')
    in
    (match local with
     | Some (best_id, `Here) when improves best_id -> splice best_id
     | Some (best_id, `Remote next_router) when improves best_id ->
       hop_towards next_router
         (Join_req { joining; gateway; chasing = Some (best_id, next_router); avoid; waited })
     | Some _ | None ->
       (* Nothing better here: keep chasing the committed candidate. *)
       (match chasing with
        | Some (_, crouter) when crouter <> at -> hop_towards crouter m
        | Some (cid, _) ->
          (* Arrived where the candidate lives: it is the predecessor. *)
          splice cid
        | None -> ()))
  | Join_resp _ | Get_pred _ | Pred_info _ | Notify _ | Leave_pred _ | Leave_succ _
  | Lookup_req _ | Lookup_resp _ | Verify_req _ | Verify_resp _ -> ()

(* ---- lookups ------------------------------------------------------------ *)

and forward_lookup t ~at (m : message) =
  match m with
  | Lookup_req { target; origin; token; chasing = _; avoid = _; waited = _; hops } ->
    let sh = shd t at in
    let respond owner =
      send_direct t ~cat:"lookup" ~from:at ~dest:origin
        (Lookup_resp { token; owner; hops })
        (handle t origin)
    in
    (match t.behaviours.(at) with
     | Drop_lookups ->
       (* Byzantine silence: the request dies here and the origin's attempt
          timeout pays for it.  Applies at every hop the request transits —
          responses travel application-direct and cannot be intercepted. *)
       ()
     | Misroute ->
       (* Deterministic misrouting: answer immediately, naming this router's
          best resident as the owner.  A real identifier at a real router —
          just the wrong one — so the origin burns a retry cycle on it. *)
       let best = ref None in
       Store.iter_router sh.store at (fun s ->
           let rid = Store.rid sh.store s in
           match !best with
           | Some bid when not (Id.closer_clockwise ~target rid bid) -> ()
           | Some _ | None -> best := Some rid);
       respond (match !best with Some rid -> Some (rid, at) | None -> None)
     | Honest | Poison_succs -> honest_lookup t ~at ~sh ~respond m)
  | _ -> ()

and honest_lookup t ~at ~sh ~respond (m : message) =
  match m with
  | Lookup_req { target; origin; token; chasing; avoid; waited; hops } ->
    let local = best_candidate t at ~target ~exclude:avoid () in
    let improves id =
      match chasing with
      | None -> true
      | Some (cid, _) -> Id.closer_clockwise ~target id cid
    in
    let settle best_id =
      match find_slot t at best_id with
      | None ->
        if waited < t.cfg.stuck_wait_limit then
          sched t ~rail:at ~at ~time_ms:(now_at t at +. t.cfg.stuck_wait_ms)
            (fun () ->
              forward_lookup t ~at
                (Lookup_req
                   { target; origin; token; chasing = Some (best_id, at); avoid;
                     waited = waited + 1; hops }))
        else
          (* Chased candidate is gone: re-route without it. *)
          forward_lookup t ~at
            (Lookup_req
               { target; origin; token; chasing = None; avoid = best_id :: avoid;
                 waited = 0; hops })
      | Some s -> respond (Some (Store.rid sh.store s, at))
    in
    let hop_towards dest m' =
      match Linkstate.next_hop sh.s_ls at dest with
      | None -> respond None
      | Some hop ->
        sh.msg_count <- sh.msg_count + 1;
        Metrics.incr sh.s_metrics "lookup" 1;
        sched t ~rail:at ~at:hop
          ~time_ms:(now_at t at +. Graph.latency t.graph at hop)
          (fun () -> forward_lookup t ~at:hop m')
    in
    (match local with
     | Some (best_id, `Here) when improves best_id -> settle best_id
     | Some (best_id, `Remote next_router) when improves best_id ->
       hop_towards next_router
         (Lookup_req
            { target; origin; token; chasing = Some (best_id, next_router); avoid;
              waited; hops = hops + 1 })
     | Some _ | None ->
       (match chasing with
        | Some (_, crouter) when crouter <> at ->
          hop_towards crouter
            (Lookup_req { target; origin; token; chasing; avoid; waited; hops = hops + 1 })
        | Some (cid, _) -> settle cid
        | None -> respond None))
  | _ -> ()

(* ---- message dispatch --------------------------------------------------- *)

and handle t at (m : message) =
  match m with
  | Join_req _ -> forward_join t ~at m
  | Lookup_req _ -> forward_lookup t ~at m
  | Join_resp { joining; pred; succ; succ_list } ->
    let sh = shd t at in
    (match Hashtbl.find_opt sh.joins joining with
     | None -> () (* duplicate response from a retried or re-spliced request *)
     | Some st ->
       st.completed <- true;
       Hashtbl.remove sh.joins joining;
       (* The resident materialises only now, so a half-joined identifier is
          never visible to concurrent lookups. *)
       let now = now_at t at in
       let s = Store.alloc sh.store ~router:at joining in
       Store.set_pred sh.store s (Some pred);
       Store.set_pred_heard sh.store s now;
       Store.set_succ_list sh.store s
         (normalize_succ_list t ~self:joining ?succ:(Option.map fst succ) succ_list);
       Hashtbl.replace sh.where joining s;
       let final_succ =
         match succ with
         | Some (sid, srouter) ->
           (* Tell the successor about us. *)
           send_direct t ~cat:"join" ~from:at ~dest:srouter
             (Notify { candidate = joining; candidate_router = at; target = sid })
             (handle t srouter);
           Some (sid, srouter)
         | None -> Some pred
       in
       Store.set_succ sh.store s final_succ;
       sh.olog <- O_join (now, joining) :: sh.olog;
       sh.olog <- O_repoint (now, joining, Option.map fst final_succ) :: sh.olog;
       sh.joins_done <- sh.joins_done + 1)
  | Get_pred { asker; asker_router; target; token } ->
    let sh = shd t at in
    (* Successor-list poisoning: fabricated identifiers placed immediately
       clockwise of the probed member, all "hosted" here — the asker sorts
       them as its closest backups.  Content-derived from the probed
       identifier, so the campaign is byte-identical at any shard count. *)
    let poison () =
      let p1 = Id.succ_id target in
      let p2 = Id.succ_id p1 in
      let p3 = Id.succ_id p2 in
      [ (p1, at); (p2, at); (p3, at) ]
    in
    (match find_slot t at target with
     | None ->
       if t.behaviours.(at) = Poison_succs && not (ever_member t target) then
         (* Vouch for a ghost: a poisoned router answers probes of
            identifiers that were never admitted — its own fabrications —
            so a victim that promoted one keeps believing its successor is
            alive.  Real dead members are NOT vouched for: concealing a
            genuine death would suppress the failovers the promotion attack
            feeds on (and hand the victim a silent succ forever, which no
            promotion defense could ever be measured against). *)
         send_direct t ~cat:"stabilize" ~from:at ~dest:asker_router
           (Pred_info { of_id = target; pred = None; succ_list = poison ();
                        to_id = asker; token })
           (handle t asker_router)
       (* else dead: the asker's probe timeout handles it *)
     | Some s ->
       (* A probe from our predecessor doubles as its liveness heartbeat. *)
       (match Store.pred sh.store s with
        | Some (pid, _) when Id.equal pid asker ->
          Store.set_pred_heard sh.store s (now_at t at)
        | Some _ | None -> ());
       let succ_list =
         match Store.succ sh.store s with
         | Some sp -> sp :: Store.succ_list sh.store s
         | None -> Store.succ_list sh.store s
       in
       let succ_list =
         if t.behaviours.(at) = Poison_succs then poison () @ succ_list
         else succ_list
       in
       send_direct t ~cat:"stabilize" ~from:at ~dest:asker_router
         (Pred_info
            { of_id = target; pred = Store.pred sh.store s; succ_list; to_id = asker; token })
         (handle t asker_router))
  | Pred_info { of_id; pred; succ_list; to_id; token } ->
    let sh = shd t at in
    Hashtbl.remove sh.probes token;
    (match find_slot t at to_id with
     | None -> ()
     | Some s ->
       Store.set_probe_inflight sh.store s false;
       let rid = Store.rid sh.store s in
       (* Adopt the successor's own successors as our backups. *)
       (match Store.succ sh.store s with
        | Some (sid, _) when Id.equal sid of_id ->
          Store.set_succ_list sh.store s
            (normalize_succ_list t ~self:rid ~succ:sid succ_list)
        | Some _ | None -> ());
       (match (pred, Store.succ sh.store s) with
        | Some (pid, prouter), Some ((sid, _) as old_succ)
          when Id.equal sid of_id && Id.between rid pid sid ->
          (* A closer successor surfaced between us and our successor. *)
          repoint t ~router:at s (Some (pid, prouter));
          Store.set_succ_list sh.store s
            (normalize_succ_list t ~self:rid ~succ:pid
               (old_succ :: Store.succ_list sh.store s));
          send_direct t ~cat:"stabilize" ~from:at ~dest:prouter
            (Notify { candidate = rid; candidate_router = at; target = pid })
            (handle t prouter)
        | _ ->
          (* Confirmed: tell the successor we believe we are its pred. *)
          (match Store.succ sh.store s with
           | Some (sid, srouter) ->
             send_direct t ~cat:"stabilize" ~from:at ~dest:srouter
               (Notify { candidate = rid; candidate_router = at; target = sid })
               (handle t srouter)
           | None -> ())))
  | Notify { candidate; candidate_router; target } ->
    let sh = shd t at in
    (match find_slot t at target with
     | None -> ()
     | Some s ->
       (match Store.pred sh.store s with
        | Some (pid, _) when Id.equal pid candidate ->
          Store.set_pred_heard sh.store s (now_at t at)
        | Some (pid, _) when not (Id.between pid candidate (Store.rid sh.store s)) -> ()
        | Some _ | None ->
          Store.set_pred sh.store s (Some (candidate, candidate_router));
          Store.set_pred_heard sh.store s (now_at t at)))
  | Leave_pred { departing; to_id; new_succ; new_succ_list } ->
    let sh = shd t at in
    (match find_slot t at to_id with
     | None -> ()
     | Some s ->
       let rid = Store.rid sh.store s in
       (match Store.succ sh.store s with
        | Some (sid, _) when Id.equal sid departing ->
          repoint t ~router:at s new_succ;
          Store.set_succ_list sh.store s
            (normalize_succ_list t ~self:rid ?succ:(Option.map fst new_succ)
               (List.filter (fun (i, _) -> not (Id.equal i departing)) new_succ_list));
          (* Introduce ourselves to the inherited successor right away. *)
          (match new_succ with
           | Some (nid, nrouter) when not (Id.equal nid rid) ->
             send_direct t ~cat:"repair" ~from:at ~dest:nrouter
               (Notify { candidate = rid; candidate_router = at; target = nid })
               (handle t nrouter)
           | Some _ | None -> ())
        | Some _ | None ->
          (* Our successor moved on already; just drop the departed identifier
             from the backup list. *)
          Store.set_succ_list sh.store s
            (List.filter
               (fun (i, _) -> not (Id.equal i departing))
               (Store.succ_list sh.store s))))
  | Leave_succ { departing; to_id; new_pred } ->
    let sh = shd t at in
    (match find_slot t at to_id with
     | None -> ()
     | Some s ->
       (match Store.pred sh.store s with
        | Some (pid, _) when Id.equal pid departing ->
          Store.set_pred sh.store s new_pred;
          Store.set_pred_heard sh.store s (now_at t at)
        | Some _ | None -> ()))
  | Lookup_resp { token; owner; hops } ->
    let sh = shd t at in
    (match Hashtbl.find_opt sh.lookups token with
     | None ->
       (* A cancelled branch or a superseded attempt coming home: the work
          it charged along the way bought nothing. *)
       Metrics.charge_wasted sh.s_metrics hops
     | Some st ->
       Hashtbl.remove sh.lookups token;
       st.lk_outstanding <- st.lk_outstanding - 1;
       if not st.finished then begin
         let ok =
           match owner with Some (oid, _) -> Id.equal oid st.lk_target | None -> false
         in
         (* Any learned owner pointer seeds the origin's pointer cache. *)
         (match owner with
          | Some (oid, orouter) -> pcache_insert t at oid orouter
          | None -> ());
         if ok then begin
           (* First success wins: cancel the sibling branches still in
              flight — their tokens are dropped so their answers are
              discarded (and charged as waste) on arrival. *)
           if st.lk_outstanding > 0 then begin
             List.iter
               (fun tk -> if tk <> token then Hashtbl.remove sh.lookups tk)
               st.lk_tokens;
             Metrics.charge_cancelled sh.s_metrics st.lk_outstanding;
             st.lk_outstanding <- 0
           end;
           st.lk_tokens <- [];
           finish_lookup t st ~ok:true
         end
         else if st.lk_outstanding > 0 then
           (* A losing branch with siblings still racing: let them run. *)
           Metrics.charge_wasted sh.s_metrics hops
         else if st.lk_attempts > t.cfg.lookup_retries then begin
           st.lk_tokens <- [];
           finish_lookup t st ~ok:false
         end
         else begin
           (* Every branch came back wrong or empty: give stabilisation one
              period to repair the pointers, then retry. *)
           st.lk_tokens <- [];
           sh.lookup_retries <- sh.lookup_retries + 1;
           sched t ~rail:at ~at
             ~time_ms:(now_at t at +. t.cfg.stabilize_period_ms)
             (fun () -> if not st.finished then start_lookup_attempt t st)
         end
       end)
  | Verify_req { claimant; asker_router; token; challenge } ->
    (* A failover asker is challenging [claimant]'s residency here.  Only a
       resident admitted with its credential can produce a valid tag; an
       honest router reports absence outright, and a poisoned router's vouch
       for a ghost is indistinguishable from absence to the verifier — it
       does not hold the key either way, so replying [None] loses it
       nothing and keeps the wire model small. *)
    let resp =
      match find_slot t at claimant with
      | None -> None
      | Some _ ->
        if Hashtbl.mem t.tainted claimant then None
        else begin
          let kp =
            match Hashtbl.find_opt t.creds claimant with
            | Some kp -> kp
            | None -> Identity.credential_for claimant (* bootstrap labels *)
          in
          Some (Identity.respond kp challenge)
        end
    in
    send_direct t ~cat:"verify" ~from:at ~dest:asker_router
      (Verify_resp { token; resp })
      (handle t asker_router)
  | Verify_resp { token; resp } ->
    let sh = shd t at in
    (match Hashtbl.find_opt sh.verifies token with
     | Some vs when not vs.v_done ->
       vs.v_done <- true;
       Hashtbl.remove sh.verifies token;
       let ok =
         match resp with
         | Some r -> Identity.check_response ~claimed:vs.v_claimed vs.v_challenge r
         | None -> false
       in
       vs.v_k ok
     | Some _ | None -> ())

and finish_lookup t st ~ok =
  let sh = shd t st.origin in
  st.finished <- true;
  sh.lookups_open <- sh.lookups_open - 1;
  st.cb
    {
      target = st.lk_target;
      issued_ms = st.lk_issued;
      completed_ms = now_at t st.origin;
      ok;
      attempts = st.lk_attempts;
    }

and start_lookup_attempt t st =
  let sh = shd t st.origin in
  st.lk_attempts <- st.lk_attempts + 1;
  let token = fresh_token sh in
  st.lk_token <- token;
  st.lk_tokens <- [ token ];
  st.lk_outstanding <- 1;
  Hashtbl.replace sh.lookups token st;
  let now = now_at t st.origin in
  sched t ~rail:st.origin ~at:st.origin ~time_ms:now (fun () ->
      forward_lookup t ~at:st.origin
        (Lookup_req
           { target = st.lk_target; origin = st.origin; token; chasing = None; avoid = [];
             waited = 0; hops = 0 }));
  (* Extra branches start at diversified routers: the request transits there
     first (charged like any routed message), then greedy-walks from that
     router's local knowledge.  The primary branch above is byte-identical
     to the α=1 engine — extras only add events after it. *)
  let alpha = max 1 t.cfg.lookup_alpha in
  if alpha > 1 then begin
    let starts = Array.make (alpha - 1) (-1) in
    let k =
      branch_starts_into t ~from:st.origin ~target:st.lk_target ~out:starts
        ~pos:0 ~max_extra:(alpha - 1)
    in
    for b = 0 to k - 1 do
      let start = starts.(b) in
      let btoken = fresh_token sh in
      st.lk_tokens <- btoken :: st.lk_tokens;
      st.lk_outstanding <- st.lk_outstanding + 1;
      Hashtbl.replace sh.lookups btoken st;
      let hops = link_hops_between t st.origin start in
      send_direct t ~cat:"lookup" ~from:st.origin ~dest:start
        (Lookup_req
           { target = st.lk_target; origin = st.origin; token = btoken;
             chasing = None; avoid = []; waited = 0; hops })
        (handle t start)
    done
  end;
  let timeout =
    t.cfg.lookup_timeout_ms *. (t.cfg.rpc_backoff ** float_of_int (st.lk_attempts - 1))
  in
  sched t ~rail:st.origin ~at:st.origin ~time_ms:(now +. timeout) (fun () ->
      if (not st.finished) && st.lk_token = token && st.lk_outstanding > 0
      then begin
        (* Reap every branch of this attempt. *)
        List.iter (fun tk -> Hashtbl.remove sh.lookups tk) st.lk_tokens;
        st.lk_tokens <- [];
        st.lk_outstanding <- 0;
        sh.rpc_timeouts <- sh.rpc_timeouts + 1;
        if st.lk_attempts > t.cfg.lookup_retries then finish_lookup t st ~ok:false
        else begin
          sh.lookup_retries <- sh.lookup_retries + 1;
          start_lookup_attempt t st
        end
      end)

let lookup_async t ~from target cb =
  let sh = shd t from in
  let st =
    {
      origin = from;
      lk_target = target;
      lk_issued = now_at t from;
      lk_attempts = 0;
      lk_token = -1;
      lk_tokens = [];
      lk_outstanding = 0;
      finished = false;
      cb;
    }
  in
  sh.lookups_open <- sh.lookups_open + 1;
  start_lookup_attempt t st

(* ---- join entry point with timeout/retry -------------------------------- *)

let rec start_join_attempt t joining (st : join_state) =
  let sh = shd t st.gateway in
  st.join_attempts <- st.join_attempts + 1;
  let attempt = st.join_attempts in
  let now = now_at t st.gateway in
  sched t ~rail:st.gateway ~at:st.gateway ~time_ms:now (fun () ->
      forward_join t ~at:st.gateway
        (Join_req { joining; gateway = st.gateway; chasing = None; avoid = []; waited = 0 }));
  let timeout =
    t.cfg.join_timeout_ms *. (t.cfg.rpc_backoff ** float_of_int (attempt - 1))
  in
  sched t ~rail:st.gateway ~at:st.gateway ~time_ms:(now +. timeout) (fun () ->
      if (not st.completed) && st.join_attempts = attempt then begin
        sh.rpc_timeouts <- sh.rpc_timeouts + 1;
        if st.join_attempts > t.cfg.join_retries then begin
          sh.joins_failed <- sh.joins_failed + 1;
          Hashtbl.remove sh.joins joining
        end
        else begin
          sh.join_retries <- sh.join_retries + 1;
          start_join_attempt t joining st
        end
      end)

let is_joining t id = Array.exists (fun sh -> Hashtbl.mem sh.joins id) t.sh

(* Join admission.  The headline fix of the attack lab: where the static
   [Rofl_intra.Network.join] always verified the claimed identifier, the
   dynamic ring admitted any claim unchallenged.  The gateway now runs one
   challenge/response round trip on the access link before the chase starts
   — synchronous, like the pcache refresh round trips, charged as two
   control messages under "verify" (the host is co-located with its
   gateway, so no graph latency is modelled; the cost shows up in message
   counts and in the crypto work per join, not in ring-convergence time).

   [cred] is the keypair the host presents for [joining]; omitted, the
   canonical credential for the identifier is presented — the honest path.
   A forged claim presents someone else's keypair and is rejected here when
   verification is on; with verification off it is admitted and remembered
   as tainted, which is what the doctor's forged-admission audit reads. *)
let join t ~gateway ?cred joining =
  if is_member t joining || is_joining t joining then ()
  else begin
    let sh = shd t gateway in
    let cred =
      match cred with Some kp -> kp | None -> Identity.credential_for joining
    in
    let g = Prng.create (Hashtbl.hash (Id.to_bytes joining, 0x0c4a7, "join-verify")) in
    let valid =
      Result.is_ok (Identity.verify_claim g ~claimed:joining (Identity.respond cred))
    in
    if t.cfg.verify_joins then begin
      sh.msg_count <- sh.msg_count + 2;
      Metrics.incr sh.s_metrics "verify" 2
    end;
    if t.cfg.verify_joins && not valid then begin
      sh.join_rejects <- sh.join_rejects + 1;
      Metrics.charge_join_reject sh.s_metrics
    end
    else begin
      if valid then Hashtbl.remove t.tainted joining
      else Hashtbl.replace t.tainted joining ();
      Hashtbl.replace t.creds joining cred;
      (ostate t joining).o_ever <- true;
      let st = { gateway; join_attempts = 0; completed = false } in
      Hashtbl.add sh.joins joining st;
      start_join_attempt t joining st
    end
  end

(* ---- departures --------------------------------------------------------- *)

(* Graceful departure: hand succ/pred state to the neighbours, then vanish.
   Returns false when the identifier is not resident anywhere. *)
let depart t ~graceful rid =
  match locate_slot t rid with
  | None -> false
  | Some (sh, s) ->
    let router = Store.owner sh.store s in
    if graceful then begin
      (match Store.pred sh.store s with
       | Some (pid, prouter) when not (Id.equal pid rid) ->
         send_direct t ~cat:"repair" ~from:router ~dest:prouter
           (Leave_pred
              {
                departing = rid;
                to_id = pid;
                new_succ = Store.succ sh.store s;
                new_succ_list = Store.succ_list sh.store s;
              })
           (handle t prouter)
       | Some _ | None -> ());
      (match Store.succ sh.store s with
       | Some (sid, srouter) when not (Id.equal sid rid) ->
         send_direct t ~cat:"repair" ~from:router ~dest:srouter
           (Leave_succ { departing = rid; to_id = sid; new_pred = Store.pred sh.store s })
           (handle t srouter)
       | Some _ | None -> ())
    end;
    Hashtbl.remove sh.where rid;
    Store.release sh.store s;
    (* Whoever still points at rid is stale from this instant. *)
    t.departs <- (Shard.now t.coord, rid) :: t.departs;
    true

let leave t rid =
  let ok = depart t ~graceful:true rid in
  if ok then t.leaves_done <- t.leaves_done + 1;
  ok

let crash t rid =
  let ok = depart t ~graceful:false rid in
  if ok then t.crashes_done <- t.crashes_done + 1;
  ok

let move t ~new_gateway rid =
  let ok = depart t ~graceful:true rid in
  if ok then begin
    t.moves_done <- t.moves_done + 1;
    let st = { gateway = new_gateway; join_attempts = 0; completed = false } in
    Hashtbl.replace (shd t new_gateway).joins rid st;
    start_join_attempt t rid st
  end;
  ok

(* ---- stabilisation ------------------------------------------------------ *)

(* One probe of a resident's successor, with timeout/retry/backoff; when
   every retry times out the successor is declared dead and the first live
   backup is promoted (Chord successor-list failover).  The timeout closure
   captures (router, rid), never the slot: slots are recycled on departure,
   so it re-resolves when it fires and only acts if the resident is still
   here with the same pointer. *)
let rec send_probe t ~router rid (sid, srouter) attempt =
  let sh = shd t router in
  let token = fresh_token sh in
  Hashtbl.replace sh.probes token ();
  send_direct t ~cat:"stabilize" ~from:router ~dest:srouter
    (Get_pred { asker = rid; asker_router = router; target = sid; token })
    (handle t srouter);
  let timeout =
    t.cfg.rpc_timeout_ms *. (t.cfg.rpc_backoff ** float_of_int (attempt - 1))
  in
  sched t ~rail:router ~at:router ~time_ms:(now_at t router +. timeout)
    (fun () ->
      if Hashtbl.mem sh.probes token then begin
        Hashtbl.remove sh.probes token;
        sh.rpc_timeouts <- sh.rpc_timeouts + 1;
        (* Only act if we are still resident and the pointer is unchanged. *)
        match find_slot t router rid with
        | Some s
          when Store.succ_router sh.store s = srouter
               && Id.equal (Store.succ_rid sh.store s) sid ->
          if attempt <= t.cfg.rpc_retries then
            send_probe t ~router rid (sid, srouter) (attempt + 1)
          else failover t ~router s sid
        | Some s -> Store.set_probe_inflight sh.store s false
        | None -> ()
      end)

(* The successor is unresponsive: drop it and promote the next backup.  With
   an exhausted backup list, fall back on the local router's default
   identifier — always alive — and let stabilisation walk the pointer back
   into place.

   With [verify_joins] on, promotion is no longer blind (the second half of
   the headline fix): each candidate is challenged at its claimed router
   before the pointer moves — a Verify_req/Verify_resp round trip with one
   rpc timeout and no retries, a failed or unanswered challenge rejecting
   the candidate and moving on to the next.  The probe-inflight flag stays
   set across the chain so the stabiliser cannot start a second failover
   for the same stale pointer; every settling path clears it. *)
and failover t ~router s dead =
  let sh = shd t router in
  sh.failovers <- sh.failovers + 1;
  let rid = Store.rid sh.store s in
  let backups =
    List.filter (fun (i, _) -> not (Id.equal i dead)) (Store.succ_list sh.store s)
  in
  if t.cfg.verify_joins then try_promote t ~router rid ~dead backups
  else begin
    Store.set_probe_inflight sh.store s false;
    match backups with
    | (nid, nrouter) :: rest ->
      repoint t ~router s (Some (nid, nrouter));
      Store.set_succ_list sh.store s rest;
      send_direct t ~cat:"repair" ~from:router ~dest:nrouter
        (Notify { candidate = rid; candidate_router = router; target = nid })
        (handle t nrouter)
    | [] -> promote_anchor t ~router s rid
  end

and promote_anchor t ~router s rid =
  let sh = shd t router in
  let anchor = router_label router in
  if Id.equal anchor rid then repoint t ~router s (Store.pred sh.store s)
  else begin
    repoint t ~router s (Some (anchor, router));
    Store.set_succ_list sh.store s []
  end

and try_promote t ~router rid ~dead candidates =
  let sh = shd t router in
  match find_slot t router rid with
  | None -> () (* departed while failing over; nothing left to settle *)
  | Some s -> (
    match candidates with
    | [] ->
      Store.set_probe_inflight sh.store s false;
      promote_anchor t ~router s rid
    | (nid, nrouter) :: rest ->
      if nrouter = router then begin
        (* Co-located candidate: the handshake is a local call, no wire. *)
        let ok =
          match find_slot t router nid with
          | Some _ -> not (Hashtbl.mem t.tainted nid)
          | None -> false
        in
        if ok then promote_verified t ~router rid ~dead (nid, nrouter) rest
        else begin
          sh.promo_rejects <- sh.promo_rejects + 1;
          Metrics.charge_promo_reject sh.s_metrics;
          try_promote t ~router rid ~dead rest
        end
      end
      else begin
        let token = fresh_token sh in
        (* Challenge bytes are content-keyed on (asker, candidate): the
           handshake outcome is then a function of the workload alone,
           identical at any shard or job count. *)
        let challenge =
          Identity.fresh_challenge
            (Prng.create (Hashtbl.hash (Id.to_bytes rid, Id.to_bytes nid, 0x7e11f)))
        in
        let k ok =
          if ok then promote_verified t ~router rid ~dead (nid, nrouter) rest
          else begin
            sh.promo_rejects <- sh.promo_rejects + 1;
            Metrics.charge_promo_reject sh.s_metrics;
            try_promote t ~router rid ~dead rest
          end
        in
        Hashtbl.replace sh.verifies token
          { v_claimed = nid; v_challenge = challenge; v_done = false; v_k = k };
        send_direct t ~cat:"verify" ~from:router ~dest:nrouter
          (Verify_req { claimant = nid; asker_router = router; token; challenge })
          (handle t nrouter);
        sched t ~rail:router ~at:router
          ~time_ms:(now_at t router +. t.cfg.rpc_timeout_ms)
          (fun () ->
            match Hashtbl.find_opt sh.verifies token with
            | Some vs when not vs.v_done ->
              vs.v_done <- true;
              Hashtbl.remove sh.verifies token;
              sh.rpc_timeouts <- sh.rpc_timeouts + 1;
              vs.v_k false
            | Some _ | None -> ())
      end)

and promote_verified t ~router rid ~dead (nid, nrouter) rest =
  let sh = shd t router in
  match find_slot t router rid with
  | None -> ()
  | Some s ->
    Store.set_probe_inflight sh.store s false;
    if Store.succ_router sh.store s >= 0 && Id.equal (Store.succ_rid sh.store s) dead
    then begin
      repoint t ~router s (Some (nid, nrouter));
      Store.set_succ_list sh.store s rest;
      send_direct t ~cat:"repair" ~from:router ~dest:nrouter
        (Notify { candidate = rid; candidate_router = router; target = nid })
        (handle t nrouter)
    end
    (* else: the pointer moved on during verification; leave it be *)

(* A backup strictly closer (clockwise) than the successor itself means the
   ring went "loopy": concurrent splices and handoffs left a consistent
   cycle that visits members out of identifier order, and pairwise
   stabilisation alone cannot repair that — every wrong succ/pred pair is
   mutually confirmed (Chord's loopy-network problem).  The successor list
   is both the evidence and the repair: promote the closest entry and let
   Notify/rectify re-marry the neighbours. *)
let untwist t ~router s =
  let sh = shd t router in
  match Store.succ sh.store s with
  | None -> ()
  | Some ((sid, _) as old_succ) ->
    let rid = Store.rid sh.store s in
    let closer =
      List.filter
        (fun (bid, _) ->
          (not (Id.equal bid rid)) && Id.compare_dist rid bid rid sid < 0)
        (Store.succ_list sh.store s)
    in
    (match closer with
     | [] -> ()
     | first :: rest ->
       let bid, brouter =
         List.fold_left
           (fun (ai, ar) (bi, br) ->
             if Id.compare_dist rid bi rid ai < 0 then (bi, br) else (ai, ar))
           first rest
       in
       repoint t ~router s (Some (bid, brouter));
       (* Re-sorting places the demoted old successor at its true clockwise
          rank. *)
       Store.set_succ_list sh.store s
         (normalize_succ_list t ~self:rid ~succ:bid
            (old_succ :: Store.succ_list sh.store s));
       send_direct t ~cat:"repair" ~from:router ~dest:brouter
         (Notify { candidate = rid; candidate_router = router; target = bid })
         (handle t brouter))

(* ---- network-size estimation --------------------------------------------

   A resident knows L = 1 + |backups| consecutive clockwise neighbours
   spanning the arc d = distance(self, farthest).  With members uniform on
   the 2^128 ring, d/L estimates the mean gap, so N̂ = L·2^128/d.  A single
   node's estimate is noisy — the arc is an Erlang(L) draw, so factor-of-
   several outliers are routine — but the median over all residents
   concentrates tightly; every consumer (auto-tuner, doctor, tests) reads
   {!estimate_n}, never a per-node sample.  Arithmetic runs on {!Id.key}
   (the top 62 bits): arcs below key resolution only occur at populations
   ≫ 10^12, far past anything simulated here. *)

let two_pow_62 = 4.611686018427387904e18

let estimate_n_slot store s =
  if Store.succ_router store s < 0 then 1.0
  else begin
    let rid = Store.rid store s in
    let len = Store.succ_list_len store s in
    let l, far =
      if len > 0 then (len + 1, Store.succ_list_id store s (len - 1))
      else (1, Store.succ_rid store s)
    in
    if Id.equal far rid then 1.0
    else
      let dk = float_of_int (max 1 (Id.key (Id.distance rid far))) in
      float_of_int l *. two_pow_62 /. dk
  end

let estimate_n t =
  let acc = ref [] in
  for router = 0 to Graph.n t.graph - 1 do
    let sh = shd t router in
    Store.iter_router sh.store router (fun s ->
        acc := estimate_n_slot sh.store s :: !acc)
  done;
  let xs = List.sort Float.compare !acc in
  let n = List.length xs in
  if n = 0 then 0.0 else List.nth xs (n / 2)

(* ---- self-tuning stabilisation ------------------------------------------

   Auto mode derives the probe period and successor-list length from what
   the protocol itself can observe, instead of the static config knobs:

   - churn rate λ̂ (deaths per member per ms), from announced departures
     plus failover detections, normalised by N̂ and smoothed by an EWMA;
   - probe-period multiplier m = clamp(1..16, P*/period) where
     P* = ε/λ̂ keeps the expected stale-successor fraction under ε — the
     churn lab's staleness SLO;
   - backup-list target ⌈log2 N̂⌉−1 (never below the static knob): longer
     lists ride along in Pred_info replies, so widening them costs no
     extra messages, only probe-reply bytes.

   Runs once per global round; the O(members·log) median is fine at lab
   scale and auto mode is opt-in. *)

let stale_eps = 0.02

let auto_retune t ~now =
  t.auto_rounds <- t.auto_rounds + 1;
  let nhat = estimate_n t in
  t.auto_nhat <- nhat;
  let deaths =
    t.leaves_done + Array.fold_left (fun acc sh -> acc + sh.failovers) 0 t.sh
  in
  let dt = now -. t.auto_last_ms in
  if t.auto_last_ms > 0.0 && dt > 0.0 && nhat >= 1.0 then begin
    let raw = float_of_int (deaths - t.auto_last_deaths) /. (nhat *. dt) in
    t.auto_rate <-
      (if t.auto_rounds <= 2 then raw else (0.7 *. t.auto_rate) +. (0.3 *. raw))
  end;
  t.auto_last_deaths <- deaths;
  t.auto_last_ms <- now;
  t.auto_mult <-
    (if t.auto_rounds <= 4 then 1.0 (* warm up on the static cadence *)
     else if t.auto_rate <= 0.0 then 16.0
     else
       Float.max 1.0
         (Float.min 16.0 (stale_eps /. t.auto_rate /. t.cfg.stabilize_period_ms)));
  t.auto_sl_limit <-
    (let static = max 0 (t.cfg.succ_list_len - 1) in
     if nhat < 2.0 then static
     else
       let l = int_of_float (ceil (log nhat /. log 2.0)) - 1 in
       min (max static l) (Store.cap_list (shd t 0).store))

let auto_state t =
  if t.cfg.stabilize_auto then Some (t.auto_nhat, t.auto_mult, t.auto_sl_limit)
  else None

let pcache_entries t =
  Array.fold_left (fun acc c -> acc + c.Pcache.len) 0 t.pcaches

let pcache_capacity_ok t =
  Array.for_all (fun c -> c.Pcache.len <= c.Pcache.cap) t.pcaches

let pcache_quota_ok t = Array.for_all Pcache.group_quota_ok t.pcaches

(* Every identifier currently cached in any router's pointer cache, with the
   router whose cache holds it — the doctor's poison-residency sweep. *)
let pcache_iter t f =
  Array.iteri
    (fun router c ->
      for i = 0 to c.Pcache.len - 1 do
        f ~router c.Pcache.ids.(i) c.Pcache.routers.(i)
      done)
    t.pcaches

let stabilize_resident t ~router ~now s =
  let sh = shd t router in
  let store = sh.store in
  let rid = Store.rid store s in
  (* Expire a silent predecessor so a live Notify can replace it. *)
  (match Store.pred store s with
   | Some (pid, _)
     when (not (Id.equal pid rid))
          && now -. Store.pred_heard store s > t.cfg.pred_timeout_ms ->
     Store.set_pred store s None
   | Some _ | None -> ());
  if t.cfg.untwist then untwist t ~router s;
  let srouter = Store.succ_router store s in
  if
    srouter >= 0
    && (not (Id.equal (Store.succ_rid store s) rid))
    && (not (Store.probe_inflight store s))
    && ((not t.cfg.stabilize_auto) || now >= Store.due store s)
  then begin
    Store.set_probe_inflight store s true;
    if t.cfg.stabilize_auto then
      Store.set_due store s (now +. (t.auto_mult *. t.cfg.stabilize_period_ms));
    send_probe t ~router rid (Store.succ_rid store s, srouter) 1
  end

(* One shard's slice of a stabilisation tick: walks only its own routers,
   touches only its own state, emits through the shard-aware seam — safe to
   fan shards out over the pool from the (parked) global context. *)
let stabilize_shard t ~now sx =
  let sh = t.sh.(sx) in
  for router = 0 to Graph.n t.graph - 1 do
    if t.shard_of.(router) = sx then
      Store.iter_router sh.store router (fun s -> stabilize_resident t ~router ~now s)
  done

let stabilize_round t =
  t.rounds <- t.rounds + 1;
  let now = Shard.now t.coord in
  if t.cfg.stabilize_auto then auto_retune t ~now;
  match t.pool with
  | Some p when t.nshards > 1 && Pool.jobs p > 1 ->
    ignore (Pool.map p (fun sx -> stabilize_shard t ~now sx) (List.init t.nshards Fun.id))
  | _ ->
    for sx = 0 to t.nshards - 1 do
      stabilize_shard t ~now sx
    done

(* ---- pointer-cache refresh manager --------------------------------------

   A recurring global sweep, offset half a period from the stabiliser so it
   runs *between* rounds: each router re-validates up to
   [pcache_refresh_budget] entries older than the TTL.  The validation
   round-trip is modelled synchronously — membership is checked directly
   (every shard is parked at a global event, so the read is safe and
   K-independent) and the probe + reply are charged under "refresh" at the
   shortest-path link count.  Dead entries are evicted; live ones get a
   fresh stamp. *)

let refresh_round t =
  let now = Shard.now t.coord in
  for router = 0 to Graph.n t.graph - 1 do
    let c = t.pcaches.(router) in
    let sh = shd t router in
    let budget = ref t.cfg.pcache_refresh_budget in
    let i = ref 0 in
    while !i < c.Pcache.len && !budget > 0 do
      if now -. c.Pcache.stamp.(!i) > t.cfg.pcache_refresh_ttl_ms then begin
        decr budget;
        let id = c.Pcache.ids.(!i) and r = c.Pcache.routers.(!i) in
        let links = 2 * link_hops_between t router r in
        sh.msg_count <- sh.msg_count + links;
        Metrics.incr sh.s_metrics "refresh" links;
        match find_slot t r id with
        | Some _ ->
          c.Pcache.stamp.(!i) <- now;
          incr i
        | None -> Pcache.remove_at c !i
      end
      else incr i
    done
  done

(* The stabiliser is a recurring *global* event: it reads and writes every
   shard, so it must run with all shards parked — and global times are
   exactly the K-independent instants the doctor's monitor samples at. *)
let start_stabilizer t =
  if not t.stab_on then begin
    t.stab_on <- true;
    let rec tick () =
      if t.stab_on then begin
        stabilize_round t;
        Shard.at_global t.coord
          ~time_ms:(Shard.now t.coord +. t.cfg.stabilize_period_ms)
          tick
      end
    in
    Shard.at_global t.coord
      ~time_ms:(Shard.now t.coord +. t.cfg.stabilize_period_ms)
      tick;
    if Array.length t.pcaches > 0 && not t.refresh_on then begin
      t.refresh_on <- true;
      let rec rtick () =
        if t.stab_on then begin
          refresh_round t;
          Shard.at_global t.coord
            ~time_ms:(Shard.now t.coord +. t.cfg.stabilize_period_ms)
            rtick
        end
        else t.refresh_on <- false
      in
      Shard.at_global t.coord
        ~time_ms:(Shard.now t.coord +. (1.5 *. t.cfg.stabilize_period_ms))
        rtick
    end
  end

let stop_stabilizer t = t.stab_on <- false

let run_for t budget_ms =
  Shard.run_until t.coord (Shard.now t.coord +. budget_ms)

let members t =
  Array.fold_left
    (fun acc sh -> Hashtbl.fold (fun rid _ acc -> rid :: acc) sh.where acc)
    [] t.sh
  |> List.sort Id.compare

let successor_of t rid =
  match locate_slot t rid with
  | None -> None
  | Some (sh, s) -> Option.map fst (Store.succ sh.store s)

let ring_converged t =
  let ms = Array.of_list (members t) in
  let n = Array.length ms in
  n = 0
  || begin
    let ok = ref true in
    Array.iteri
      (fun i rid ->
        let expect = ms.((i + 1) mod n) in
        match successor_of t rid with
        | Some s when Id.equal s expect -> ()
        | Some _ | None -> ok := false)
      ms;
    !ok
  end

let run_until_quiescent t ~max_ms =
  let start = Shard.now t.coord in
  let deadline = start +. max_ms in
  let rec go () =
    if Shard.now t.coord >= deadline then Shard.now t.coord -. start
    else begin
      run_for t t.cfg.stabilize_period_ms;
      if Shard.pending t.coord = 0 && ring_converged t then
        Shard.now t.coord -. start
      else begin
        if Shard.pending t.coord = 0 then stabilize_round t;
        go ()
      end
    end
  in
  go ()

let stats t =
  let sum f = Array.fold_left (fun acc sh -> acc + f sh) 0 t.sh in
  {
    messages = sum (fun sh -> sh.msg_count);
    joins_completed = sum (fun sh -> sh.joins_done);
    stabilize_rounds = t.rounds;
    joins_failed = sum (fun sh -> sh.joins_failed);
    leaves_completed = t.leaves_done;
    moves_completed = t.moves_done;
    crashes = t.crashes_done;
    failovers = sum (fun sh -> sh.failovers);
    rpc_timeouts = sum (fun sh -> sh.rpc_timeouts);
    join_retries = sum (fun sh -> sh.join_retries);
    lookup_retries = sum (fun sh -> sh.lookup_retries);
    join_rejects = sum (fun sh -> sh.join_rejects);
    promo_rejects = sum (fun sh -> sh.promo_rejects);
  }

(* ---- adversarial surface ------------------------------------------------- *)

let behaviour_of t router = t.behaviours.(router)

(* Campaign-event API: behaviours are read from shard contexts on every
   message, so flips must happen with all shards parked (global context) —
   the same discipline as every other campaign mutation. *)
let set_behaviour t router b = t.behaviours.(router) <- b

let router_groups t = t.groups

let is_tainted t id = Hashtbl.mem t.tainted id

let tainted_count t = Hashtbl.length t.tainted

(* ---- audit surface (doctor-side, not protocol) --------------------------- *)

type resident_view = {
  v_id : Id.t;
  v_router : int;
  v_succ : pointer option;
  v_succ_list : pointer list;
  v_pred : pointer option;
}

let residents_view t =
  let acc = ref [] in
  for router = 0 to Graph.n t.graph - 1 do
    let sh = shd t router in
    Store.iter_router sh.store router (fun s ->
        acc :=
          {
            v_id = Store.rid sh.store s;
            v_router = router;
            v_succ = Store.succ sh.store s;
            v_succ_list = Store.succ_list sh.store s;
            v_pred = Store.pred sh.store s;
          }
          :: !acc)
  done;
  List.sort (fun a b -> Id.compare a.v_id b.v_id) !acc

let locate t rid =
  match locate_slot t rid with
  | None -> None
  | Some (sh, s) -> Some (Store.owner sh.store s)

(* ---- fault injection (doctor test harness) ------------------------------- *)

(* Swap the successor pointers of the members at sorted positions 0 and n/2:
   a deterministic "loopy" whirl — every pointer still names a live member,
   so pairwise stabilisation confirms it, and only succ-list inversion
   evidence (the untwist repair, or the doctor's loopy-evidence check) can
   tell the ring went wrong.  Logged as raw pointer moves: a fault must not
   close stale windows reserved for genuine departures, but the oracle's
   mirror of the ring has to keep tracking the real pointers. *)
let inject_cross_splice t =
  let ms = Array.of_list (members t) in
  let n = Array.length ms in
  if n < 4 then None
  else begin
    let a = ms.(0) and b = ms.(n / 2) in
    match (locate_slot t a, locate_slot t b) with
    | Some (sha, sa), Some (shb, sb) ->
      let va = Store.succ sha.store sa and vb = Store.succ shb.store sb in
      Store.set_succ sha.store sa vb;
      Store.set_succ shb.store sb va;
      let now = Shard.now t.coord in
      sha.olog <- O_raw (now, a, Option.map fst vb) :: sha.olog;
      shb.olog <- O_raw (now, b, Option.map fst va) :: shb.olog;
      Some (a, b)
    | _ -> None
  end

let lookup_owner t ~from target =
  (* [succ target] sits at maximal clockwise distance from the target, so it
     is the cleared-horizon register: everything is strictly closer. *)
  let rec walk router best_id guard =
    if guard > 4 * Graph.n t.graph then None
    else
      match best_candidate t router ~target () with
      | None -> None
      | Some (id, `Here) -> Some id
      | Some (id, `Remote next_router) ->
        if not (Id.closer_clockwise ~target id best_id) then begin
          (* No progress: settle on the best local resident. *)
          let sh = shd t router in
          let best = ref None in
          Store.iter_router sh.store router (fun s ->
              let rid = Store.rid sh.store s in
              match !best with
              | Some bid when not (Id.closer_clockwise ~target rid bid) -> ()
              | Some _ | None -> best := Some rid);
          !best
        end
        else walk next_router id (guard + 1)
  in
  walk from (Id.succ_id target) 0

(* Batched owner resolution: the same pure-read greedy walk as
   {!lookup_owner}, advanced one hop per pass across a whole batch of
   lookups so campaigns can resolve owner sets without re-entering the walk
   per query.  Registers live in parallel arrays; the two [Store.iter_router]
   visitors are allocated once per batch and communicate through scratch
   cells, so the per-hop path allocates nothing beyond what the sequential
   walk does.  Results are exactly [Array.map (lookup_owner t ~from) targets]
   — the walk reads only resident-store state, which the batch never
   mutates.

   [stats], when provided, adds data-plane accounting per lookup: the router
   where the verdict landed, the ring hops taken, and the physical cost of
   each ring hop priced by the link-state shortest path between the two
   routers (link traversals and latency).  The pricing queries the owning
   shard's Dijkstra cache, which only warms memoised trees — results are
   unchanged and nothing is scheduled, so a stats walk is still pure-read
   with respect to the protocol. *)
type batch_stats = {
  bs_owner_router : int array;  (* verdict router, -1 when unresolved *)
  bs_ring_hops : int array;     (* greedy walk hops taken *)
  bs_link_hops : int array;     (* physical link traversals under the walk *)
  bs_latency_ms : float array;  (* summed per-hop shortest-path latency *)
}

let batch_walk t ~n ~from ~targets ~found ~(owner : Id.t array) ~stats =
  if Array.length from < n || Array.length targets < n then
    invalid_arg "Proto.lookup_owner_batch: from/targets shorter than batch";
  let guard_max = 4 * Graph.n t.graph in
  let router = Array.make (max n 1) 0 in
  let best = Array.make (max n 1) Id.zero in
  let best_valid = Array.make (max n 1) false in
  let guard = Array.make (max n 1) 0 in
  let live = Array.make (max n 1) true in
  (* scratch registers for the shared visitors *)
  let cur_store = ref (shd t 0).store in
  let cur_router = ref 0 in
  let cur_target = ref Id.zero in
  let cand_some = ref false in
  let cand_here = ref false in
  let cand_id = ref Id.zero in
  let cand_next = ref 0 in
  let consider_slot s =
    let store = !cur_store in
    let rid = Store.rid store s in
    (if (not !cand_some) || Id.closer_clockwise ~target:!cur_target rid !cand_id
     then begin
       cand_some := true;
       cand_here := true;
       cand_id := rid
     end);
    let srouter = Store.succ_router store s in
    if srouter >= 0 && srouter <> !cur_router then begin
      let sid = Store.succ_rid store s in
      if (not !cand_some) || Id.closer_clockwise ~target:!cur_target sid !cand_id
      then begin
        cand_some := true;
        cand_here := false;
        cand_id := sid;
        cand_next := srouter
      end
    end
  in
  let settle_some = ref false in
  let settle_id = ref Id.zero in
  let settle_slot s =
    let rid = Store.rid !cur_store s in
    if (not !settle_some) || Id.closer_clockwise ~target:!cur_target rid !settle_id
    then begin
      settle_some := true;
      settle_id := rid
    end
  in
  (* verdict bookkeeping: where lookup [i] ended, when stats are wanted *)
  let landed i =
    match stats with
    | None -> ()
    | Some st -> st.bs_owner_router.(i) <- router.(i)
  in
  let priced_hop i r next =
    match stats with
    | None -> ()
    | Some st ->
      st.bs_ring_hops.(i) <- st.bs_ring_hops.(i) + 1;
      let ls = (shd t r).s_ls in
      let h = Linkstate.price_hop_into ls r next ~latency:st.bs_latency_ms i in
      if h >= 0 then st.bs_link_hops.(i) <- st.bs_link_hops.(i) + h
  in
  (* one walk hop for lookup [i]; false when a verdict landed *)
  let step i =
    if guard.(i) > guard_max then false
    else begin
      let r = router.(i) in
      cur_router := r;
      cur_target := targets.(i);
      cur_store := (shd t r).store;
      cand_some := false;
      Store.iter_router !cur_store r consider_slot;
      if not !cand_some then false
      else if !cand_here then begin
        found.(i) <- true;
        owner.(i) <- !cand_id;
        landed i;
        false
      end
      else begin
        let id = !cand_id and next = !cand_next in
        let progress =
          if best_valid.(i) then Id.closer_clockwise ~target:targets.(i) id best.(i)
          else
            (* cleared horizon = [succ target]: anything at less than the
               maximal clockwise distance is strictly closer *)
            Id.compare_dist id targets.(i) Id.zero Id.max_value < 0
        in
        if not progress then begin
          (* No progress: settle on the best local resident. *)
          settle_some := false;
          Store.iter_router !cur_store r settle_slot;
          if !settle_some then begin
            found.(i) <- true;
            owner.(i) <- !settle_id;
            landed i
          end;
          false
        end
        else begin
          priced_hop i r next;
          router.(i) <- next;
          best.(i) <- id;
          best_valid.(i) <- true;
          guard.(i) <- guard.(i) + 1;
          true
        end
      end
    end
  in
  let remaining = ref n in
  for i = 0 to n - 1 do
    router.(i) <- from.(i);
    found.(i) <- false;
    match stats with
    | None -> ()
    | Some st ->
      st.bs_owner_router.(i) <- -1;
      st.bs_ring_hops.(i) <- 0;
      st.bs_link_hops.(i) <- 0;
      st.bs_latency_ms.(i) <- 0.0
  done;
  while !remaining > 0 do
    for i = 0 to n - 1 do
      if live.(i) then
        if not (step i) then begin
          live.(i) <- false;
          decr remaining
        end
    done
  done

(* ---- α-parallel batched walks --------------------------------------------

   The α engine runs up to [alpha] concurrent greedy walk *branches* per
   lookup — branch 0 from the caller's router, the rest from diversified
   starts ({!branch_starts_into}) — with first-success semantics: the first
   branch to land a verdict resolves the lookup and the surviving siblings
   are cancelled on the spot.  Registers are flat parallel arrays indexed
   [i*alpha + b] so one pass advances every in-flight branch of every
   lookup one walk-iteration; within a pass, branches step in (lookup,
   branch-index) order, so any tie between branches resolves to the lowest
   branch index — the determinism discipline that keeps results a function
   of the workload alone.

   Duplicate-work accounting is settled at resolution time, not at branch
   death: the waste of lookup [i] is the ring hops of every branch minus
   the charged branch (the winner, or branch 0 when no branch succeeds), so
   nothing is double-counted.  [cancellations] counts branches that were
   still live when a sibling won; [released] counts every branch slot
   handed back — the caller's freelist invariant is
   [released = Σ br_count.(i)]. *)

type alpha_stats = {
  al_owner_router : int array;  (* verdict router, -1 when unresolved *)
  al_winner_branch : int array; (* winning branch index, -1 when unresolved *)
  al_branches : int array;      (* branches actually launched *)
  al_ring_hops : int array;     (* charged branch's greedy hops *)
  al_wasted_hops : int array;   (* every other branch's greedy hops *)
  al_link_hops : int array;     (* charged branch's physical link traversals *)
  al_latency_ms : float array;  (* charged branch's summed path latency *)
}

let lookup_owner_alpha_into t ~n ~alpha ~from ~targets ~found
    ~(owner : Id.t array) ~(lk_done : Bytes.t) ~br_count ~br_router ~br_best
    ~(br_best_valid : Bytes.t) ~br_guard ~br_hops ~br_link_hops ~br_latency_ms
    ~(br_live : Bytes.t) ~stats =
  if alpha < 1 then invalid_arg "Proto.lookup_owner_alpha_into: alpha must be >= 1";
  if Array.length from < n || Array.length targets < n then
    invalid_arg "Proto.lookup_owner_alpha_into: from/targets shorter than batch";
  if
    Array.length found < n || Array.length owner < n
    || Bytes.length lk_done < n
    || Array.length br_count < n
  then invalid_arg "Proto.lookup_owner_alpha_into: per-lookup arrays shorter than batch";
  if
    Array.length br_router < n * alpha
    || Array.length br_best < n * alpha
    || Bytes.length br_best_valid < n * alpha
    || Array.length br_guard < n * alpha
    || Array.length br_hops < n * alpha
    || Bytes.length br_live < n * alpha
  then invalid_arg "Proto.lookup_owner_alpha_into: branch registers shorter than n*alpha";
  (match stats with
   | Some _ when Array.length br_link_hops < n * alpha || Array.length br_latency_ms < n * alpha ->
     invalid_arg "Proto.lookup_owner_alpha_into: branch stat registers shorter than n*alpha"
   | _ -> ());
  let guard_max = 4 * Graph.n t.graph in
  (* scratch registers for the shared visitors — one set per call *)
  let cur_store = ref (shd t 0).store in
  let cur_router = ref 0 in
  let cur_target = ref Id.zero in
  let cand_some = ref false in
  let cand_here = ref false in
  let cand_id = ref Id.zero in
  let cand_next = ref 0 in
  let consider_slot s =
    let store = !cur_store in
    let rid = Store.rid store s in
    (if (not !cand_some) || Id.closer_clockwise ~target:!cur_target rid !cand_id
     then begin
       cand_some := true;
       cand_here := true;
       cand_id := rid
     end);
    let srouter = Store.succ_router store s in
    if srouter >= 0 && srouter <> !cur_router then begin
      let sid = Store.succ_rid store s in
      if (not !cand_some) || Id.closer_clockwise ~target:!cur_target sid !cand_id
      then begin
        cand_some := true;
        cand_here := false;
        cand_id := sid;
        cand_next := srouter
      end
    end
  in
  let settle_some = ref false in
  let settle_id = ref Id.zero in
  let settle_slot s =
    let rid = Store.rid !cur_store s in
    if (not !settle_some) || Id.closer_clockwise ~target:!cur_target rid !settle_id
    then begin
      settle_some := true;
      settle_id := rid
    end
  in
  let win_id = ref Id.zero in
  (* one walk hop for branch register [j] of lookup [i]:
     0 = stepped, 1 = verdict in [win_id], 2 = branch dead *)
  let step i j =
    if br_guard.(j) > guard_max then 2
    else begin
      let r = br_router.(j) in
      cur_router := r;
      cur_target := targets.(i);
      cur_store := (shd t r).store;
      cand_some := false;
      Store.iter_router !cur_store r consider_slot;
      if not !cand_some then 2
      else if !cand_here then begin
        win_id := !cand_id;
        1
      end
      else begin
        let id = !cand_id and next = !cand_next in
        let progress =
          if Bytes.unsafe_get br_best_valid j <> '\000' then
            Id.closer_clockwise ~target:targets.(i) id br_best.(j)
          else Id.compare_dist id targets.(i) Id.zero Id.max_value < 0
        in
        if not progress then begin
          (* No progress: settle on the best local resident. *)
          settle_some := false;
          Store.iter_router !cur_store r settle_slot;
          if !settle_some then begin
            win_id := !settle_id;
            1
          end
          else 2
        end
        else begin
          (match stats with
           | None -> ()
           | Some _ ->
             let ls = (shd t r).s_ls in
             let h = Linkstate.price_hop_into ls r next ~latency:br_latency_ms j in
             if h >= 0 then br_link_hops.(j) <- br_link_hops.(j) + h);
          br_hops.(j) <- br_hops.(j) + 1;
          br_router.(j) <- next;
          br_best.(j) <- id;
          Bytes.unsafe_set br_best_valid j '\001';
          br_guard.(j) <- br_guard.(j) + 1;
          0
        end
      end
    end
  in
  let cancellations = ref 0 in
  let released = ref 0 in
  for i = 0 to n - 1 do
    let base = i * alpha in
    found.(i) <- false;
    Bytes.unsafe_set lk_done i '\000';
    br_router.(base) <- from.(i);
    let extra =
      if alpha > 1 then
        branch_starts_into t ~from:from.(i) ~target:targets.(i) ~out:br_router
          ~pos:(base + 1) ~max_extra:(alpha - 1)
      else 0
    in
    br_count.(i) <- 1 + extra;
    for b = 0 to extra do
      let j = base + b in
      br_best.(j) <- Id.zero;
      Bytes.unsafe_set br_best_valid j '\000';
      br_guard.(j) <- 0;
      br_hops.(j) <- 0;
      Bytes.unsafe_set br_live j '\001';
      match stats with
      | None -> ()
      | Some _ ->
        br_link_hops.(j) <- 0;
        br_latency_ms.(j) <- 0.0
    done;
    match stats with
    | None -> ()
    | Some st ->
      st.al_owner_router.(i) <- -1;
      st.al_winner_branch.(i) <- -1;
      st.al_branches.(i) <- 1 + extra;
      st.al_ring_hops.(i) <- 0;
      st.al_wasted_hops.(i) <- 0;
      st.al_link_hops.(i) <- 0;
      st.al_latency_ms.(i) <- 0.0
  done;
  let remaining = ref n in
  while !remaining > 0 do
    for i = 0 to n - 1 do
      if Bytes.unsafe_get lk_done i = '\000' then begin
        let base = i * alpha in
        let cnt = br_count.(i) in
        let b = ref 0 in
        while !b < cnt && Bytes.unsafe_get lk_done i = '\000' do
          let j = base + !b in
          if Bytes.unsafe_get br_live j <> '\000' then begin
            let verdict = step i j in
            if verdict = 1 then begin
              (* First success: resolve, cancel surviving siblings, settle
                 the waste ledger in one place. *)
              found.(i) <- true;
              owner.(i) <- !win_id;
              Bytes.unsafe_set br_live j '\000';
              incr released;
              for b' = 0 to cnt - 1 do
                if b' <> !b then begin
                  let j' = base + b' in
                  if Bytes.unsafe_get br_live j' <> '\000' then begin
                    Bytes.unsafe_set br_live j' '\000';
                    incr released;
                    incr cancellations
                  end
                end
              done;
              (match stats with
               | None -> ()
               | Some st ->
                 st.al_owner_router.(i) <- br_router.(j);
                 st.al_winner_branch.(i) <- !b;
                 st.al_ring_hops.(i) <- br_hops.(j);
                 st.al_link_hops.(i) <- br_link_hops.(j);
                 st.al_latency_ms.(i) <- br_latency_ms.(j);
                 let waste = ref 0 in
                 for b' = 0 to cnt - 1 do
                   if b' <> !b then waste := !waste + br_hops.(base + b')
                 done;
                 st.al_wasted_hops.(i) <- !waste);
              Bytes.unsafe_set lk_done i '\001';
              decr remaining
            end
            else if verdict = 2 then begin
              Bytes.unsafe_set br_live j '\000';
              incr released;
              let any_live = ref false in
              for b' = 0 to cnt - 1 do
                if Bytes.unsafe_get br_live (base + b') <> '\000' then
                  any_live := true
              done;
              if not !any_live then begin
                (* Every branch dead: unresolved.  Branch 0 is the charged
                   walk (what the sequential engine would have done), the
                   rest is waste. *)
                (match stats with
                 | None -> ()
                 | Some st ->
                   st.al_ring_hops.(i) <- br_hops.(base);
                   st.al_link_hops.(i) <- br_link_hops.(base);
                   st.al_latency_ms.(i) <- br_latency_ms.(base);
                   let waste = ref 0 in
                   for b' = 1 to cnt - 1 do
                     waste := !waste + br_hops.(base + b')
                   done;
                   st.al_wasted_hops.(i) <- !waste);
                Bytes.unsafe_set lk_done i '\001';
                decr remaining
              end
            end
          end;
          incr b
        done
      end
    done
  done;
  (!cancellations, !released)

let lookup_owner_batch ?(alpha = 1) t ~from ~targets =
  let n = Array.length targets in
  if Array.length from <> n then
    invalid_arg "Proto.lookup_owner_batch: from/targets length mismatch";
  let found = Array.make (max n 1) false in
  let owner = Array.make (max n 1) Id.zero in
  if alpha <= 1 then batch_walk t ~n ~from ~targets ~found ~owner ~stats:None
  else begin
    let na = max 1 (n * alpha) in
    ignore
      (lookup_owner_alpha_into t ~n ~alpha ~from ~targets ~found ~owner
         ~lk_done:(Bytes.create (max n 1))
         ~br_count:(Array.make (max n 1) 0)
         ~br_router:(Array.make na 0) ~br_best:(Array.make na Id.zero)
         ~br_best_valid:(Bytes.create na) ~br_guard:(Array.make na 0)
         ~br_hops:(Array.make na 0) ~br_link_hops:[||] ~br_latency_ms:[||]
         ~br_live:(Bytes.create na) ~stats:None)
  end;
  Array.init n (fun i -> if found.(i) then Some owner.(i) else None)

let lookup_owner_batch_into t ~n ~from ~targets ~found ~owner ~owner_router
    ~ring_hops ~link_hops ~latency_ms =
  if
    Array.length found < n || Array.length owner < n
    || Array.length owner_router < n
    || Array.length ring_hops < n
    || Array.length link_hops < n
    || Array.length latency_ms < n
  then invalid_arg "Proto.lookup_owner_batch_into: output arrays shorter than batch";
  batch_walk t ~n ~from ~targets ~found ~owner
    ~stats:
      (Some
         {
           bs_owner_router = owner_router;
           bs_ring_hops = ring_hops;
           bs_link_hops = link_hops;
           bs_latency_ms = latency_ms;
         })


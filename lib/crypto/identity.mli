(** Simulated self-certifying identities.

    The paper ties each host/router identity to a public–private key pair and
    derives the flat identifier as a hash of the public key (§2.1), so a host
    can prove to its hosting router that it owns an identifier before the ID
    becomes resident.

    Substitution (see DESIGN.md): instead of real asymmetric crypto we use a
    one-way construction — the "public key" is SHA-256 of the secret — plus an
    HMAC challenge/response.  This preserves exactly the properties ROFL
    needs: identifiers uniformly distributed in the 128-bit space, a
    verifiable binding between the secret-holder and the identifier, and no
    way to claim an identifier without the secret. *)

type keypair
(** Secret plus derived public key. *)

type public = string
(** Serialised public key. *)

val generate : Rofl_util.Prng.t -> keypair
(** Fresh keypair from simulation randomness. *)

val public : keypair -> public

val id_of_public : public -> Rofl_idspace.Id.t
(** The self-certifying flat label: the top 128 bits of SHA-256(public). *)

val id_of_keypair : keypair -> Rofl_idspace.Id.t

type challenge = string

val fresh_challenge : Rofl_util.Prng.t -> challenge
(** Router-side nonce for the residency handshake. *)

type response

val respond : keypair -> challenge -> response
(** Host-side proof of ownership of the keypair. *)

val verify : public -> challenge -> response -> bool
(** Router-side check.  [verify pub c (respond kp c)] holds iff
    [public kp = pub]. *)

val authenticate :
  Rofl_util.Prng.t ->
  claimed_id:Rofl_idspace.Id.t ->
  public ->
  (challenge -> response) ->
  (unit, string) result
(** Full residency handshake (paper §2.1 "Security"): check that the claimed
    identifier matches the hash of the public key, then run one
    challenge/response round trip.  Returns [Error reason] on spoofing. *)

val credential_for : Rofl_idspace.Id.t -> keypair
(** Canonical simulation credential for an identifier minted directly from
    campaign randomness (rather than by hashing a generated key).  Pure
    function of the identifier bytes — every domain derives the same binding
    with no shared state.  Models "the keypair the minting host holds"; only
    the identifier's rightful owner may present it. *)

val check_response :
  claimed:Rofl_idspace.Id.t -> challenge -> response -> bool
(** Does this response prove ownership of [claimed] for this challenge?
    Accepts a genuinely self-certifying key ([claimed = H(pub)], secret on
    record) or the canonical [credential_for] binding; rejects everything
    else, including valid tags under a key bound to a different identifier. *)

val verify_claim :
  Rofl_util.Prng.t ->
  claimed:Rofl_idspace.Id.t ->
  (challenge -> response) ->
  (unit, string) result
(** One challenge/response round trip against [check_response].  Unlike
    {!authenticate} it also accepts canonical campaign credentials, so it is
    the verification entry point for the dynamic ring. *)

val grind :
  Rofl_util.Prng.t ->
  accept:(Rofl_idspace.Id.t -> bool) ->
  budget:int ->
  keypair option * int
(** Draw fresh keypairs until one's identifier satisfies [accept] or [budget]
    draws are spent.  Returns the keypair (if found) and the number of draws —
    the work a Sybil attacker pays to aim identifiers at a ring region. *)

type sybil_auditor
(** Per-router audit state bounding the number of resident identifiers — the
    damage-control mechanism against Sybil attacks the paper sketches. *)

val auditor : limit:int -> sybil_auditor

val admit : sybil_auditor -> Rofl_idspace.Id.t -> (unit, string) result
(** Record a newly resident ID; [Error] once the per-router limit is hit. *)

val release : sybil_auditor -> Rofl_idspace.Id.t -> unit

val admitted : sybil_auditor -> int

module Id = Rofl_idspace.Id
module Prng = Rofl_util.Prng

type public = string

type keypair = { secret : string; pub : public }

let generate g =
  let raw =
    String.concat ""
      (List.map (fun _ -> Id.to_bytes (Id.random g)) [ (); () ])
  in
  let secret = "sk:" ^ raw in
  { secret; pub = Sha256.digest ("pk-derive:" ^ secret) }

let public kp = kp.pub

let id_of_public pub = Id.of_bytes_exn (String.sub (Sha256.digest pub) 0 16)

let id_of_keypair kp = id_of_public kp.pub

type challenge = string

let fresh_challenge g = Id.to_bytes (Id.random g)

type response = { pub : public; tag : string }

let respond (kp : keypair) challenge =
  { pub = kp.pub; tag = Hmac.mac ~key:kp.secret ("resp:" ^ challenge ^ kp.pub) }

(* Without real signatures the verifier cannot recompute an HMAC keyed by the
   prover's secret, so the simulation verifies the binding structurally: the
   response must carry the same public key, and the tag must be well-formed
   and deterministic for (secret, challenge).  A forger without the secret
   cannot produce the tag because it would need SHA-256 preimages.  We model
   verification as recomputing via a registry of issued keypairs.  The
   registry is process-global shared mutable state; campaigns generate keys
   from several [Pool] domains, so every access takes the lock. *)
let registry : (public, string) Hashtbl.t = Hashtbl.create 256

let registry_lock = Mutex.create ()

let register (kp : keypair) =
  Mutex.lock registry_lock;
  Hashtbl.replace registry kp.pub kp.secret;
  Mutex.unlock registry_lock

let registry_find pub =
  Mutex.lock registry_lock;
  let r = Hashtbl.find_opt registry pub in
  Mutex.unlock registry_lock;
  r

let verify pub challenge resp =
  resp.pub = pub
  &&
  match registry_find pub with
  | None -> false
  | Some secret -> Hmac.verify ~key:secret ~msg:("resp:" ^ challenge ^ pub) ~tag:resp.tag

(* Registration happens implicitly at generation time in the simulation. *)
let generate g =
  let kp = generate g in
  register kp;
  kp

(* Campaigns mint session identifiers directly from simulation randomness
   rather than by hashing freshly generated keys, so those identifiers have
   no registry entry.  [credential_for] is the deterministic stand-in for
   "the keypair the minting host holds for this identifier": a pure function
   of the identifier bytes, so every domain and every shard layout derives
   the same binding without shared state.  Only code playing the *owner* of
   an identifier may call it — an attacker forging someone else's identifier
   is modelled by presenting a keypair that is neither this canonical
   credential nor a hash-preimage of the identifier. *)
let credential_for id =
  let g = Prng.create (Hashtbl.hash (Id.to_bytes id, 0x1dc5ed)) in
  let raw = Id.to_bytes (Id.random g) ^ Id.to_bytes (Id.random g) in
  let secret = "sk-for:" ^ raw ^ Id.to_bytes id in
  { secret; pub = Sha256.digest ("pk-derive:" ^ secret) }

(* A response proves ownership of [claimed] iff the public key it carries is
   bound to the identifier — either genuinely self-certifying
   (claimed = H(pub), secret known to the registry) or the canonical
   simulation credential minted with the identifier — and the HMAC tag was
   produced with that key's secret over this exact challenge. *)
let check_response ~claimed challenge (resp : response) =
  let msg = "resp:" ^ challenge ^ resp.pub in
  if Id.equal claimed (id_of_public resp.pub) then
    match registry_find resp.pub with
    | None -> false
    | Some secret -> Hmac.verify ~key:secret ~msg ~tag:resp.tag
  else begin
    let kp = credential_for claimed in
    String.equal resp.pub kp.pub && Hmac.verify ~key:kp.secret ~msg ~tag:resp.tag
  end

let verify_claim g ~claimed prover =
  let challenge = fresh_challenge g in
  if check_response ~claimed challenge (prover challenge) then Ok ()
  else Error "challenge/response failed: prover does not hold the identifier's key"

(* Key grinding: draw fresh self-certifying keypairs until one hashes into
   the acceptance region.  This is exactly the work a Sybil attacker must
   spend to place identifiers around a victim — the draw count is the
   honest cost figure campaigns report. *)
let grind g ~accept ~budget =
  let rec go draws =
    if draws >= budget then (None, draws)
    else begin
      let kp = generate g in
      if accept (id_of_keypair kp) then (Some kp, draws + 1) else go (draws + 1)
    end
  in
  go 0

let authenticate g ~claimed_id pub prover =
  if not (Id.equal claimed_id (id_of_public pub)) then
    Error "identifier does not match hash of public key"
  else begin
    let challenge = fresh_challenge g in
    let resp = prover challenge in
    if verify pub challenge resp then Ok ()
    else Error "challenge/response verification failed"
  end

type sybil_auditor = { limit : int; ids : (Id.t, unit) Hashtbl.t }

let auditor ~limit = { limit; ids = Hashtbl.create 64 }

let admit a id =
  if Hashtbl.mem a.ids id then Ok ()
  else if Hashtbl.length a.ids >= a.limit then
    Error "per-router resident-identifier limit reached (Sybil audit)"
  else begin
    Hashtbl.add a.ids id ();
    Ok ()
  end

let release a id = Hashtbl.remove a.ids id

let admitted a = Hashtbl.length a.ids

module Metrics = Rofl_netsim.Metrics

let inject m category origin =
  Metrics.charge_hop m category origin;
  (* The origin hop counts message injection; compensate so categories
     report link traversals only. *)
  Metrics.incr m category (-1)

let hop m category router = Metrics.charge_hop m category router

let path m category routers = Metrics.charge_path m category routers

let span m category ~hops routers =
  List.iter (fun x -> Metrics.charge_hop m category x) routers;
  Metrics.incr m category (hops - List.length routers)

let bulk m category n = Metrics.incr m category n

(** The single entry point for walk message accounting.

    Convention: a walk charges its origin router once at injection and then
    one hop per link traversal, but reported message counts cover link
    traversals only — {!inject} charges the origin's load and immediately
    compensates the category count, so the layers never hand-roll the
    [charge_hop]/[incr (-1)] pair.  Modelled moves whose hop count exceeds
    the routers actually visited (interdomain level-restricted routes)
    charge through {!span}. *)

module Metrics = Rofl_netsim.Metrics

val inject : Metrics.t -> string -> int -> unit
(** [inject m category origin] accounts the walk's injection: load at the
    origin router, zero net messages. *)

val hop : Metrics.t -> string -> int -> unit
(** One message traversing one router: category count and router load. *)

val path : Metrics.t -> string -> int list -> unit
(** A message travelling a hop-by-hop router path: one message per link,
    load at every router on the path. *)

val span : Metrics.t -> string -> hops:int -> int list -> unit
(** [span m category ~hops routers] charges a move modelled as [hops]
    messages of which only [routers] are individually visible: each listed
    router gets load and one message, and the category count is topped up
    to [hops]. *)

val bulk : Metrics.t -> string -> int -> unit
(** Modelled aggregate cost (floods, bootstrap registrations): category
    count only, no per-router load. *)

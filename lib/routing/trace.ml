module Id = Rofl_idspace.Id

type kind = Ring | Cache | Flood | Backtrack

type event = { kind : kind; router : int; level : string; dist : Id.t }

type t = event list

let kind_to_string = function
  | Ring -> "ring"
  | Cache -> "cache"
  | Flood -> "flood"
  | Backtrack -> "backtrack"

let count t k = List.fold_left (fun acc e -> if e.kind = k then acc + 1 else acc) 0 t

let counts t =
  List.map (fun k -> (kind_to_string k, count t k)) [ Ring; Cache; Flood; Backtrack ]

let to_lines t =
  List.mapi
    (fun i e ->
      Printf.sprintf "%3d %-9s at=%-4d level=%-14s dist=%s" (i + 1)
        (kind_to_string e.kind) e.router e.level (Id.to_short_string e.dist))
    t

type builder = { mutable rev : event list }

let builder () = { rev = [] }

let record b ~kind ~router ~level ~dist = b.rev <- { kind; router; level; dist } :: b.rev

let events b = List.rev b.rev

(** The shared greedy ring-walk core.

    ROFL's defining mechanism — greedy clockwise progress towards a flat
    label over successor pointers, improved by cached source routes — is the
    same loop in the intradomain layer (router-granularity walks over SPF
    source routes, {!Rofl_intra.Network.lookup}) and the interdomain layer
    (AS-granularity walks over per-level rings, {!Rofl_inter.Route}).  This
    functor owns that loop once: candidate ranking by clockwise distance,
    commit-to-route versus strictly-closer replacement, stale-pointer
    NACK/restart, and the step guard.  A {!SUBSTRATE} supplies what differs
    between layers: the position type, candidate enumeration, move-cost
    charging, and the termination predicates. *)

module Id = Rofl_idspace.Id

type ('pos, 'route, 'verdict) moved =
  | Stepped of 'pos * 'route
      (** Advanced one unit; the remaining committed route is carried along
          (exhausted for substrates whose moves are atomic). *)
  | Finished of 'verdict  (** The move itself terminated the walk. *)
  | Blocked  (** The committed route cannot be followed from here. *)

val best : target:Id.t -> id_of:('a -> Id.t) -> 'a list -> 'a option
(** Greedy candidate ranking: the element whose identifier minimises the
    clockwise distance to [target] (so the target itself wins outright).
    Ties keep the earliest element, so enumeration order encodes precedence
    — both layers list ring state before cache shortcuts, which is how "a
    cached pointer wins only when strictly closer" falls out of the
    ranking.  Allocation-free per comparison: candidates are ranked with
    {!Id.closer_clockwise} rather than materialised distances. *)

module type SUBSTRATE = sig
  type st
  (** Per-walk state: the network plus the walk's mutable registers
      (counters, trace builder, commit bookkeeping). *)

  type pos
  (** Where the packet is (a router index, or unit when the substrate keeps
      the position in [st]). *)

  type cand
  (** A way to make progress: a locally resident identifier, a successor /
      finger pointer, or a cache entry. *)

  type route
  (** The committed tail towards the best identifier seen so far. *)

  type verdict
  (** Terminal outcome of the walk. *)

  val max_steps : st -> int
  (** Step guard: the walk gives up after this many loop iterations. *)

  val restart_limit : st -> int
  (** How many stale-pointer restarts are allowed before the walk stops
      pruning and settles with whatever it can still see. *)

  val horizon : [ `Persistent | `Per_move ]
  (** [`Persistent]: the walk remembers the distance of the identifier it
      committed to and only re-commits to a strictly closer candidate,
      otherwise it keeps following the committed route (the intradomain
      discipline, where a route is followed one physical hop at a time and
      transit routers may shortcut).  [`Per_move]: every move consumes its
      route atomically and the next iteration re-selects from scratch (the
      interdomain discipline). *)

  val arrived : st -> pos -> verdict option
  (** Checked first each iteration: has the walk already terminated here? *)

  val prepare : st -> pos -> pos
  (** Free normalisation before candidate enumeration (e.g. the free
      intra-AS move to the closest local resident); identity if none. *)

  val stale_commit : st -> pos -> bool
  (** Called when the committed route is exhausted (or nothing is committed):
      if the identifier the walk was chasing is gone from this position,
      prune the stale pointer (NACK back to its owner) and return [true] to
      restart the walk from here with a cleared horizon.  Must return
      [false] when nothing was committed. *)

  val candidates : st -> pos -> cand list
  (** Enumerate progress candidates, already filtered for validity
      (liveness, route validity, exclusions).  Order encodes tie precedence
      (see {!best}): ring state first, cache shortcuts last. *)

  val target : st -> Id.t
  (** The identifier the walk is chasing; fixed for the walk's lifetime. *)

  val cand_id : st -> cand -> Id.t
  (** The candidate's identifier; the loop ranks candidates by clockwise
      distance from this to {!target} without allocating distances. *)

  val deliver_here : st -> pos -> cand -> verdict option
  (** If selecting this candidate terminates the walk at [pos] (the target
      or its predecessor is resident right here), the verdict. *)

  val commit : st -> pos -> cand -> route option
  (** Turn the selected candidate into a followable route, recording any
      commit bookkeeping (owner/chased for NACKs, trace tags); [None] when
      no route can be constructed (the walk is stuck). *)

  val exhausted : route -> bool

  val follow : st -> pos -> route -> (pos, route, verdict) moved
  (** Advance one unit along the route, charging costs and tracing. *)

  val no_candidate : st -> pos -> verdict
  (** Nothing to select at all (after any substrate-specific last resort,
      e.g. the interdomain peer-filter consultation). *)

  val settle : st -> pos -> verdict
  (** Recovery exhausted under [`Persistent]: no closer candidate, nothing
      committed left to follow. *)

  val stuck : st -> pos -> verdict
  (** Guard exceeded, un-followable route, or unconstructible route. *)
end

module Make (S : SUBSTRATE) : sig
  val run : S.st -> start:S.pos -> S.verdict
  (** Drive the greedy loop from [start] until a verdict.  Each iteration:
      guard check, arrival check, stale-commit NACK/restart, free
      normalisation, candidate ranking, then either terminal delivery,
      commit to a strictly closer candidate, continuation along the
      committed route, or settling. *)
end

(** Uniform per-hop trace of a greedy walk.

    Both routing layers emit one event per unit of forwarding work — a ring
    or cache hop, a bloom-filter peer crossing, a false-positive or
    stale-pointer reversal — so experiments and the [--trace] CLI can show
    the anatomy of a lookup without knowing which layer produced it. *)

module Id = Rofl_idspace.Id

type kind =
  | Ring  (** following ring state (successor / finger pointers) *)
  | Cache  (** following a cached pointer shortcut *)
  | Flood  (** a bloom-filter peer crossing (§4.2) *)
  | Backtrack
      (** a reversal: bloom false positive back over the peering link, or a
          stale-pointer NACK restart (§4.1) *)

type event = {
  kind : kind;
  router : int;  (** router (intra) or AS (inter) the event lands on *)
  level : string;  (** ["intra"], or the interdomain level's name *)
  dist : Id.t;  (** clockwise distance to the walk's target at this event *)
}

type t = event list

val kind_to_string : kind -> string

val count : t -> kind -> int

val counts : t -> (string * int) list
(** Event totals keyed by {!kind_to_string}, every kind present. *)

val to_lines : t -> string list
(** One human-readable line per event, numbered in walk order. *)

(** Accumulator threaded through a walk; events are recorded in walk order. *)
type builder

val builder : unit -> builder

val record : builder -> kind:kind -> router:int -> level:string -> dist:Id.t -> unit

val events : builder -> t

module Id = Rofl_idspace.Id

type ('pos, 'route, 'verdict) moved =
  | Stepped of 'pos * 'route
  | Finished of 'verdict
  | Blocked

(* Keep-first on ties: a later candidate replaces the incumbent only when
   strictly closer, so enumeration order encodes precedence. *)
let best ~dist cands =
  List.fold_left
    (fun acc c ->
      let d = dist c in
      match acc with
      | Some (bd, _) when Id.compare d bd >= 0 -> acc
      | Some _ | None -> Some (d, c))
    None cands

module type SUBSTRATE = sig
  type st
  type pos
  type cand
  type route
  type verdict

  val max_steps : st -> int
  val restart_limit : st -> int
  val horizon : [ `Persistent | `Per_move ]
  val arrived : st -> pos -> verdict option
  val prepare : st -> pos -> pos
  val stale_commit : st -> pos -> bool
  val candidates : st -> pos -> cand list
  val distance : st -> cand -> Id.t
  val deliver_here : st -> pos -> cand -> verdict option
  val commit : st -> pos -> cand -> route option
  val exhausted : route -> bool
  val follow : st -> pos -> route -> (pos, route, verdict) moved
  val no_candidate : st -> pos -> verdict
  val settle : st -> pos -> verdict
  val stuck : st -> pos -> verdict
end

module Make (S : SUBSTRATE) = struct
  let run st ~start =
    let max_steps = S.max_steps st in
    let restart_limit = S.restart_limit st in
    (* [best_dist] is the clockwise distance of the identifier the walk has
       committed to; under [`Persistent] only a strictly closer candidate
       replaces the committed route. *)
    let rec loop pos best_dist committed restarts guard =
      if guard > max_steps then S.stuck st pos
      else
        match S.arrived st pos with
        | Some v -> v
        | None ->
          let exhausted_now =
            match committed with None -> true | Some r -> S.exhausted r
          in
          if exhausted_now && restarts < restart_limit && S.stale_commit st pos then
            (* Stale pointer pruned (NACK): restart from here with a cleared
               horizon. *)
            loop pos Id.max_value None (restarts + 1) (guard + 1)
          else begin
            let pos = S.prepare st pos in
            match S.arrived st pos with
            | Some v -> v
            | None ->
              (match best ~dist:(S.distance st) (S.candidates st pos) with
               | None -> S.no_candidate st pos
               | Some (d, c) ->
                 (match S.deliver_here st pos c with
                  | Some v -> v
                  | None ->
                    let commit_now =
                      match S.horizon with
                      | `Per_move -> true
                      | `Persistent -> Id.compare d best_dist < 0
                    in
                    if commit_now then (
                      match S.commit st pos c with
                      | None -> S.stuck st pos
                      | Some route -> advance pos d route restarts guard)
                    else (
                      (* Nothing closer here; keep following the committed
                         route if any of it remains. *)
                      match committed with
                      | Some route when not (S.exhausted route) ->
                        advance pos best_dist route restarts guard
                      | Some _ | None -> S.settle st pos)))
          end
    and advance pos dist route restarts guard =
      match S.follow st pos route with
      | Blocked -> S.stuck st pos
      | Finished v -> v
      | Stepped (pos', route') -> loop pos' dist (Some route') restarts (guard + 1)
    in
    loop start Id.max_value None 0 0
end

module Id = Rofl_idspace.Id

type ('pos, 'route, 'verdict) moved =
  | Stepped of 'pos * 'route
  | Finished of 'verdict
  | Blocked

(* Keep-first on ties: a later candidate replaces the incumbent only when
   strictly closer to the target, so enumeration order encodes precedence.
   Ranking compares identifiers with the allocation-free
   [Id.closer_clockwise] instead of materialising distances. *)
let best ~target ~id_of cands =
  List.fold_left
    (fun acc c ->
      match acc with
      | Some b when not (Id.closer_clockwise ~target (id_of c) (id_of b)) -> acc
      | Some _ | None -> Some c)
    None cands

module type SUBSTRATE = sig
  type st
  type pos
  type cand
  type route
  type verdict

  val max_steps : st -> int
  val restart_limit : st -> int
  val horizon : [ `Persistent | `Per_move ]
  val arrived : st -> pos -> verdict option
  val prepare : st -> pos -> pos
  val stale_commit : st -> pos -> bool
  val candidates : st -> pos -> cand list
  val target : st -> Id.t
  val cand_id : st -> cand -> Id.t
  val deliver_here : st -> pos -> cand -> verdict option
  val commit : st -> pos -> cand -> route option
  val exhausted : route -> bool
  val follow : st -> pos -> route -> (pos, route, verdict) moved
  val no_candidate : st -> pos -> verdict
  val settle : st -> pos -> verdict
  val stuck : st -> pos -> verdict
end

module Make (S : SUBSTRATE) = struct
  let run st ~start =
    let max_steps = S.max_steps st in
    let restart_limit = S.restart_limit st in
    let target = S.target st in
    (* [best_id] is the identifier the walk has committed to; under
       [`Persistent] only a candidate strictly closer to the target replaces
       the committed route.  The cleared-horizon register is [succ target]:
       it is the unique identifier at maximal clockwise distance from the
       target, so "closer than the sentinel" accepts exactly the candidates
       the seed's materialised max-distance register accepted — without
       allocating a distance per comparison. *)
    let sentinel = Id.succ_id target in
    let rec loop pos best_id committed restarts guard =
      if guard > max_steps then S.stuck st pos
      else
        match S.arrived st pos with
        | Some v -> v
        | None ->
          let exhausted_now =
            match committed with None -> true | Some r -> S.exhausted r
          in
          if exhausted_now && restarts < restart_limit && S.stale_commit st pos then
            (* Stale pointer pruned (NACK): restart from here with a cleared
               horizon. *)
            loop pos sentinel None (restarts + 1) (guard + 1)
          else begin
            let pos = S.prepare st pos in
            match S.arrived st pos with
            | Some v -> v
            | None ->
              (match best ~target ~id_of:(S.cand_id st) (S.candidates st pos) with
               | None -> S.no_candidate st pos
               | Some c ->
                 (match S.deliver_here st pos c with
                  | Some v -> v
                  | None ->
                    let cid = S.cand_id st c in
                    let commit_now =
                      match S.horizon with
                      | `Per_move -> true
                      | `Persistent -> Id.closer_clockwise ~target cid best_id
                    in
                    if commit_now then (
                      match S.commit st pos c with
                      | None -> S.stuck st pos
                      | Some route -> advance pos cid route restarts guard)
                    else (
                      (* Nothing closer here; keep following the committed
                         route if any of it remains. *)
                      match committed with
                      | Some route when not (S.exhausted route) ->
                        advance pos best_id route restarts guard
                      | Some _ | None -> S.settle st pos)))
          end
    and advance pos best_id route restarts guard =
      match S.follow st pos route with
      | Blocked -> S.stuck st pos
      | Finished v -> v
      | Stepped (pos', route') -> loop pos' best_id (Some route') restarts (guard + 1)
    in
    loop start sentinel None 0 0
end

type t = { hi : int64; lo : int64 }

let zero = { hi = 0L; lo = 0L }

let max_value = { hi = -1L; lo = -1L }

let of_int64_pair hi lo = { hi; lo }

let to_int64_pair { hi; lo } = (hi, lo)

let of_int n =
  if n < 0 then invalid_arg "Id.of_int: negative";
  { hi = 0L; lo = Int64.of_int n }

(* ---- allocation-free core ------------------------------------------------

   Everything the greedy walk evaluates per candidate lives below this line
   and must not allocate.  The discipline (see DESIGN.md):

   - never build an intermediate [t]; compute on raw [hi]/[lo] words inside
     a single function so the compiler keeps the int64 temporaries in
     registers (cross-function int64 returns are boxed);
   - unsigned comparison is sign-bit flip + the native signed operators,
     which specialise to register compares — not [Int64.unsigned_compare],
     whose tuple-free path still goes through a function call per word. *)

let[@inline] uflip (x : int64) = Int64.logxor x Int64.min_int

let[@inline] ult (a : int64) (b : int64) = uflip a < uflip b

let[@inline] ule (a : int64) (b : int64) = uflip a <= uflip b

(* Words of the clockwise distance a -> b (i.e. b - a mod 2^128), kept
   separate so callers can compare distances without materialising them. *)
let[@inline] dist_lo (a : t) (b : t) = Int64.sub b.lo a.lo

let[@inline] dist_hi (a : t) (b : t) =
  let h = Int64.sub b.hi a.hi in
  if ult b.lo a.lo then Int64.sub h 1L else h

let compare a b =
  let ha = uflip a.hi and hb = uflip b.hi in
  if ha < hb then -1
  else if ha > hb then 1
  else begin
    let la = uflip a.lo and lb = uflip b.lo in
    if la < lb then -1 else if la > lb then 1 else 0
  end

let equal a b = a.hi = b.hi && a.lo = b.lo

(* Top 62 bits of the linear order as an immediate int in [0, 2^62):
   [key x < key y] implies [compare x y < 0], and [key x <> key y] decides
   the order without touching the low word.  Flat search structures
   binary-search over contiguous [int array]s of these and fall back to
   [compare] only on key ties (for SHA-derived ids, a ~2^-62 event per
   pair).  Keys are kept non-negative so differences of two keys fit the
   63-bit int — branchless searches turn the sign of a difference into a
   select mask.  No [uflip] here: {!compare} is the UNSIGNED order of the
   raw words (the flip only exists to express it through signed compares),
   so the monotone projection is a plain logical shift of [hi]. *)
let[@inline] key (t : t) = Int64.to_int (Int64.shift_right_logical t.hi 2)

(* Mixed-word avalanche over both words directly; the previous
   [Hashtbl.hash (a.hi, a.lo)] boxed a tuple per call. *)
let hash a =
  let h =
    Int64.logxor
      (Int64.mul a.hi 0x9E3779B97F4A7C15L)
      (Int64.mul a.lo 0xC2B2AE3D27D4EB4FL)
  in
  let h = Int64.logxor h (Int64.shift_right_logical h 29) in
  let h = Int64.mul h 0xBF58476D1CE4E5B9L in
  let h = Int64.logxor h (Int64.shift_right_logical h 32) in
  Int64.to_int h land max_int

let add a b =
  let lo = Int64.add a.lo b.lo in
  let carry = if ult lo a.lo then 1L else 0L in
  { hi = Int64.add (Int64.add a.hi b.hi) carry; lo }

let sub a b =
  let lo = Int64.sub a.lo b.lo in
  let borrow = if ult a.lo b.lo then 1L else 0L in
  { hi = Int64.sub (Int64.sub a.hi b.hi) borrow; lo }

let succ_id a = add a { hi = 0L; lo = 1L }

let pred_id a = sub a { hi = 0L; lo = 1L }

let distance a b = sub b a

(* x in (a, b) clockwise.  The interval (a, a) is the full ring minus a. *)
let between a x b =
  if equal a b then not (equal x a)
  else begin
    let dxh = dist_hi a x and dxl = dist_lo a x in
    if dxh = 0L && dxl = 0L then false
    else begin
      let dbh = dist_hi a b and dbl = dist_lo a b in
      ult dxh dbh || (dxh = dbh && ult dxl dbl)
    end
  end

let between_incl a x b =
  if equal a b then true
  else begin
    let dxh = dist_hi a x and dxl = dist_lo a x in
    if dxh = 0L && dxl = 0L then false
    else begin
      let dbh = dist_hi a b and dbl = dist_lo a b in
      ult dxh dbh || (dxh = dbh && ule dxl dbl)
    end
  end

let closer_clockwise ~target x y =
  let dxh = dist_hi x target and dyh = dist_hi y target in
  if dxh = dyh then ult (dist_lo x target) (dist_lo y target) else ult dxh dyh

let compare_dist a b c d =
  let h1 = uflip (dist_hi a b) and h2 = uflip (dist_hi c d) in
  if h1 < h2 then -1
  else if h1 > h2 then 1
  else begin
    let l1 = uflip (dist_lo a b) and l2 = uflip (dist_lo c d) in
    if l1 < l2 then -1 else if l1 > l2 then 1 else 0
  end

let bit id i =
  if i < 0 || i > 127 then invalid_arg "Id.bit: index out of range";
  let word, off = if i < 64 then (id.hi, 63 - i) else (id.lo, 127 - i) in
  Int64.to_int (Int64.logand (Int64.shift_right_logical word off) 1L)

let digit id ~base_bits i =
  if base_bits < 1 || base_bits > 16 then invalid_arg "Id.digit: base_bits out of range";
  let start = i * base_bits in
  if start < 0 || start + base_bits > 128 then invalid_arg "Id.digit: index out of range";
  let value = ref 0 in
  for b = start to start + base_bits - 1 do
    value := (!value lsl 1) lor bit id b
  done;
  !value

let common_prefix_bits a b =
  let rec leading_zeros word acc i =
    if i > 63 then acc
    else if Int64.logand (Int64.shift_right_logical word (63 - i)) 1L = 1L then acc
    else leading_zeros word (acc + 1) (i + 1)
  in
  let x = Int64.logxor a.hi b.hi in
  if x <> 0L then leading_zeros x 0 0
  else begin
    let y = Int64.logxor a.lo b.lo in
    if y = 0L then 128 else 64 + leading_zeros y 0 0
  end

let low32_mask = 0xFFFFFFFFL

let with_low32 id x =
  let suffix = Int64.logand (Int64.of_int32 x) low32_mask in
  { id with lo = Int64.logor (Int64.logand id.lo (Int64.lognot low32_mask)) suffix }

let low32 id = Int64.to_int32 (Int64.logand id.lo low32_mask)

let group_key id = { id with lo = Int64.logand id.lo (Int64.lognot low32_mask) }

let same_group a b = equal (group_key a) (group_key b)

let random g =
  { hi = Rofl_util.Prng.bits64 g; lo = Rofl_util.Prng.bits64 g }

let to_bytes id =
  let b = Bytes.create 16 in
  Bytes.set_int64_be b 0 id.hi;
  Bytes.set_int64_be b 8 id.lo;
  Bytes.to_string b

let of_bytes_exn s =
  if String.length s <> 16 then invalid_arg "Id.of_bytes_exn: need 16 bytes";
  let b = Bytes.of_string s in
  { hi = Bytes.get_int64_be b 0; lo = Bytes.get_int64_be b 8 }

let to_hex id = Printf.sprintf "%016Lx%016Lx" id.hi id.lo

let of_hex_exn s =
  if String.length s <> 32 then invalid_arg "Id.of_hex_exn: need 32 hex digits";
  let parse part =
    match Int64.of_string_opt ("0x" ^ part) with
    | Some v -> v
    | None -> invalid_arg "Id.of_hex_exn: bad hex"
  in
  { hi = parse (String.sub s 0 16); lo = parse (String.sub s 16 16) }

let to_short_string id = String.sub (to_hex id) 0 8

let pp ppf id = Format.pp_print_string ppf (to_short_string id)

(** Ordered view of a set of identifiers on the circular namespace.

    The simulator keeps one of these as ground truth to (a) answer oracle
    queries when constructing expected ring state and (b) check the routing
    layer's invariants (every vnode's successor pointer must agree with the
    oracle in steady state).  Each identifier carries a payload (typically the
    hosting router or AS).

    Representation: a chunked flat sorted array (spine of first-ids over
    chunks of at most 128 parallel [Id.t]/payload entries).  Handles are
    immutable — [add]/[remove] copy one chunk plus the spine and share the
    rest, so any handle doubles as an O(1) snapshot and rings can be read
    concurrently from several domains.  All read paths are allocation-free
    binary searches except where an [option]/list result is part of the
    signature; the {{!cursors} cursor API} below avoids even that. *)

type 'a t

val empty : 'a t

val cardinal : 'a t -> int
(** O(1): the count rides on the handle. *)

val is_empty : 'a t -> bool

val add : Id.t -> 'a -> 'a t -> 'a t
(** Insert or replace.  O(chunk + spine) copied words, i.e. O(sqrt-ish of
    [n]) with the default chunking; splits an overfull chunk in two. *)

val remove : Id.t -> 'a t -> 'a t
(** O(chunk + spine); re-merges a chunk that shrinks below a quarter of the
    maximum with a neighbour, so churn cannot fragment the spine. *)

val mem : Id.t -> 'a t -> bool
(** O(log n), allocation-free. *)

val find : Id.t -> 'a t -> 'a option
(** O(log n); allocates only the [Some]. *)

val successor : Id.t -> 'a t -> (Id.t * 'a) option
(** [successor x r] is the first identifier strictly clockwise of [x]
    (cyclic; returns [x]'s own entry only if it is the sole member).
    [None] iff the ring is empty.  O(log n) binary search — use
    {!cursor_gt} on hot paths to avoid the tuple/option allocation. *)

val successor_incl : Id.t -> 'a t -> (Id.t * 'a) option
(** Like {!successor} but returns [x] itself when present.  O(log n). *)

val predecessor : Id.t -> 'a t -> (Id.t * 'a) option
(** First identifier strictly counter-clockwise of [x].  O(log n). *)

val k_successors : int -> Id.t -> 'a t -> (Id.t * 'a) list
(** The first [k] members strictly clockwise of [x], in ring order; fewer if
    the ring is smaller.  One O(log n) search then O(1) per step (the seed
    re-ran a full tree search per step). *)

val min_binding : 'a t -> (Id.t * 'a) option
(** The member closest to zero — the "zero-ID" of the partition-repair
    protocol (§3.2).  O(1). *)

val to_list : 'a t -> (Id.t * 'a) list
(** Members in increasing identifier order.  O(n). *)

val of_list : (Id.t * 'a) list -> 'a t

val iter : (Id.t -> 'a -> unit) -> 'a t -> unit

val fold : (Id.t -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b

val filter : (Id.t -> 'a -> bool) -> 'a t -> 'a t
(** Single O(n) pass; the surviving count is tallied during the filter
    (the seed recomputed it with a second O(n) walk). *)

val members_between : Id.t -> Id.t -> 'a t -> (Id.t * 'a) list
(** Members in the half-open clockwise interval [(a, b\]], in increasing
    clockwise distance from [a].  O(log n + k) for [k] results — the
    qualifying members are a contiguous run of the clockwise walk, so no
    full-ring fold or sort is needed (the seed did both). *)

(** {2:cursors Allocation-free cursors}

    A cursor is a position inside one specific ring handle, packed into an
    immediate [int] (no heap allocation anywhere in this API).  Cursors are
    only meaningful against the exact handle they were obtained from:
    [add]/[remove]/[filter] return a new handle whose cursors are fresh.
    All searches are O(log n); stepping is O(1) and wraps clockwise. *)

type cursor = int
(** [< 0] means "no position" (empty ring / not found). *)

val cursor_none : cursor

val cursor_is_none : cursor -> bool

val cursor_equal : cursor -> cursor -> bool

val cursor_gt : Id.t -> 'a t -> cursor
(** First member strictly clockwise of [x] in linear order, wrapping to the
    minimum; {!cursor_none} iff empty.  Mirrors {!successor}. *)

val cursor_geq : Id.t -> 'a t -> cursor
(** Mirrors {!successor_incl}. *)

val cursor_lt : Id.t -> 'a t -> cursor
(** Mirrors {!predecessor}. *)

val cursor_find : Id.t -> 'a t -> cursor
(** Exact member, or {!cursor_none}. *)

val cursor_next : 'a t -> cursor -> cursor
(** The next member clockwise, wrapping from the maximum to the minimum. *)

val cursor_prev : 'a t -> cursor -> cursor
(** The next member counter-clockwise, wrapping from minimum to maximum. *)

val id_at : 'a t -> cursor -> Id.t

val value_at : 'a t -> cursor -> 'a

(* Chunked flat sorted-array ring.

   The seed implementation was a persistent [Map.Make(Id)]: every
   [successor]/[predecessor] was an O(log n) pointer-chasing tree walk that
   also allocated closures, and [members_between] folded the whole tree.
   This version stores members in a two-level structure:

     chunks : an array of sorted chunks, each parallel arrays
              (keys, ids, payloads) of at most [max_chunk] entries;
     starts : the first identifier of each chunk (plus its [Id.key]), for a
              cache-friendly binary search over the spine.

   Every search runs over the contiguous unboxed [int array] of [Id.key]s —
   one immediate compare per probe, no pointer chasing — and consults the
   boxed [Id.t] only to break key ties (for SHA-derived ids, essentially
   never; degenerate key-colliding rings stay correct via the linear
   tie-break scan).

   Handles are immutable: [add]/[remove] copy the touched chunk plus the
   spine (O(max_chunk + n/max_chunk) words), leaving every previously
   returned handle valid — so a "snapshot" is the handle itself, O(1), and
   the experiment memo caches can share rings across domains exactly as
   they shared the Map.  Reads never allocate: lookups are binary searches
   driven by immediate ints and the allocation-free [Id.compare], and the
   cursor API exposes positions as immediate ints so the greedy walk can
   step the ring without creating a single heap word. *)

type 'a chunk = { keys : int array; ids : Id.t array; vals : 'a array }

type 'a t =
  | Empty
  | R of {
      chunks : 'a chunk array;
      starts : Id.t array;
      skeys : int array;
      size : int;
    }

(* Chunks split at [max_chunk] into two halves and re-merge with a
   neighbour when a removal shrinks them under [min_chunk]; churn-heavy
   workloads therefore keep every chunk within [min_chunk/2, max_chunk]
   except possibly a lone undersized chunk per neighbourhood of
   full neighbours. *)
let max_chunk = 128

let min_chunk = 32

let empty = Empty

let cardinal = function Empty -> 0 | R r -> r.size

let is_empty = function Empty -> true | R _ -> false

(* ---- cursors ---------------------------------------------------------- *)

type cursor = int

let cursor_none = -1

let cursor_is_none c = c < 0

let cursor_equal (a : cursor) (b : cursor) = a = b

let[@inline] pack ci off = (ci lsl 8) lor off

let[@inline] chunk_of c = c lsr 8

let[@inline] off_of c = c land 0xff

(* Binary searches written as tail recursions over immediate ints: a local
   [ref] would allocate, and these sit under every hop of the greedy walk. *)

(* First index in [keys] holding a key >= k (the length if none); [n >= 1].
   Branchless: [Id.key]s live in [0, 2^62), so the sign of the 63-bit
   difference is a data-independent -1/0 mask and the search runs at
   load latency instead of eating a mispredict per probe. *)
let rec klb_rec (keys : int array) k base n =
  if n <= 1 then base + (((Array.unsafe_get keys base - k) asr 62) land 1)
  else begin
    let half = n lsr 1 in
    let m = (Array.unsafe_get keys (base + half - 1) - k) asr 62 in
    klb_rec keys k (base + (half land m)) (n - half)
  end

let[@inline] klb keys k n = klb_rec keys k 0 n

(* Starting from the first key >= [kx], skip members still strictly below
   [x]: only key ties need the full 128-bit compare. *)
let rec skip_lt (keys : int array) (ids : Id.t array) x kx i hi =
  if
    i < hi
    && Array.unsafe_get keys i = kx
    && Id.compare (Array.unsafe_get ids i) x < 0
  then skip_lt keys ids x kx (i + 1) hi
  else i

let rec skip_le (keys : int array) (ids : Id.t array) x kx i hi =
  if
    i < hi
    && Array.unsafe_get keys i = kx
    && Id.compare (Array.unsafe_get ids i) x <= 0
  then skip_le keys ids x kx (i + 1) hi
  else i

(* First index in the chunk holding an id >= x / > x. *)
let[@inline] lb ch x kx =
  let hi = Array.length ch.keys in
  skip_lt ch.keys ch.ids x kx (klb ch.keys kx hi) hi

let[@inline] ub ch x kx =
  let hi = Array.length ch.keys in
  skip_le ch.keys ch.ids x kx (klb ch.keys kx hi) hi

(* Largest chunk index whose first id is <= x, or -1 when x precedes every
   member in the linear order. *)
let[@inline] chunk_le (skeys : int array) (starts : Id.t array) x kx =
  let n = Array.length skeys in
  skip_le skeys starts x kx (klb skeys kx n) n - 1

let id_at t c =
  match t with
  | Empty -> invalid_arg "Ring.id_at: empty ring"
  | R r -> (Array.unsafe_get r.chunks (chunk_of c)).ids.(off_of c)

let value_at t c =
  match t with
  | Empty -> invalid_arg "Ring.value_at: empty ring"
  | R r -> (Array.unsafe_get r.chunks (chunk_of c)).vals.(off_of c)

let cursor_next t c =
  match t with
  | Empty -> cursor_none
  | R r ->
    let ci = chunk_of c and off = off_of c in
    if off + 1 < Array.length (Array.unsafe_get r.chunks ci).ids then pack ci (off + 1)
    else if ci + 1 < Array.length r.chunks then pack (ci + 1) 0
    else pack 0 0

let cursor_prev t c =
  match t with
  | Empty -> cursor_none
  | R r ->
    let ci = chunk_of c and off = off_of c in
    if off > 0 then pack ci (off - 1)
    else if ci > 0 then pack (ci - 1) (Array.length r.chunks.(ci - 1).ids - 1)
    else begin
      let nch = Array.length r.chunks in
      pack (nch - 1) (Array.length r.chunks.(nch - 1).ids - 1)
    end

let cursor_geq x t =
  match t with
  | Empty -> cursor_none
  | R r ->
    let kx = Id.key x in
    let ci = chunk_le r.skeys r.starts x kx in
    if ci < 0 then pack 0 0
    else begin
      let ch = Array.unsafe_get r.chunks ci in
      let len = Array.length ch.ids in
      let off = lb ch x kx in
      if off < len then pack ci off
      else if ci + 1 < Array.length r.chunks then pack (ci + 1) 0
      else pack 0 0
    end

let cursor_gt x t =
  match t with
  | Empty -> cursor_none
  | R r ->
    let kx = Id.key x in
    let ci = chunk_le r.skeys r.starts x kx in
    if ci < 0 then pack 0 0
    else begin
      let ch = Array.unsafe_get r.chunks ci in
      let len = Array.length ch.ids in
      let off = ub ch x kx in
      if off < len then pack ci off
      else if ci + 1 < Array.length r.chunks then pack (ci + 1) 0
      else pack 0 0
    end

let cursor_lt x t =
  match t with
  | Empty -> cursor_none
  | R r ->
    let nch = Array.length r.chunks in
    let kx = Id.key x in
    let ci = chunk_le r.skeys r.starts x kx in
    if ci < 0 then pack (nch - 1) (Array.length r.chunks.(nch - 1).ids - 1)
    else begin
      let ch = Array.unsafe_get r.chunks ci in
      let off = lb ch x kx in
      if off > 0 then pack ci (off - 1)
      else if ci > 0 then pack (ci - 1) (Array.length r.chunks.(ci - 1).ids - 1)
      else pack (nch - 1) (Array.length r.chunks.(nch - 1).ids - 1)
    end

let cursor_find x t =
  match t with
  | Empty -> cursor_none
  | R r ->
    let kx = Id.key x in
    let ci = chunk_le r.skeys r.starts x kx in
    if ci < 0 then cursor_none
    else begin
      let ch = Array.unsafe_get r.chunks ci in
      let len = Array.length ch.ids in
      let off = lb ch x kx in
      if off < len && Id.equal (Array.unsafe_get ch.ids off) x then pack ci off
      else cursor_none
    end

(* ---- queries ---------------------------------------------------------- *)

let mem id t = not (cursor_is_none (cursor_find id t))

let find id t =
  let c = cursor_find id t in
  if cursor_is_none c then None else Some (value_at t c)

let successor x t =
  let c = cursor_gt x t in
  if cursor_is_none c then None else Some (id_at t c, value_at t c)

let successor_incl x t =
  let c = cursor_geq x t in
  if cursor_is_none c then None else Some (id_at t c, value_at t c)

let predecessor x t =
  let c = cursor_lt x t in
  if cursor_is_none c then None else Some (id_at t c, value_at t c)

let k_successors k x t =
  let n = min k (cardinal t) in
  if n <= 0 then []
  else begin
    let rec go acc c remaining =
      if remaining = 0 then List.rev acc
      else go ((id_at t c, value_at t c) :: acc) (cursor_next t c) (remaining - 1)
    in
    go [] (cursor_gt x t) n
  end

let min_binding = function
  | Empty -> None
  | R r ->
    let ch = r.chunks.(0) in
    Some (ch.ids.(0), ch.vals.(0))

let iter f = function
  | Empty -> ()
  | R r ->
    Array.iter
      (fun ch ->
        for i = 0 to Array.length ch.ids - 1 do
          f ch.ids.(i) ch.vals.(i)
        done)
      r.chunks

let fold f t acc =
  match t with
  | Empty -> acc
  | R r ->
    let acc = ref acc in
    Array.iter
      (fun ch ->
        for i = 0 to Array.length ch.ids - 1 do
          acc := f ch.ids.(i) ch.vals.(i) !acc
        done)
      r.chunks;
    !acc

let to_list t = List.rev (fold (fun k v acc -> (k, v) :: acc) t [])

let members_between a b t =
  match t with
  | Empty -> []
  | R r ->
    if Id.equal a b then begin
      (* Full ring, ordered by clockwise distance from [a]: [a] itself (if
         present, distance 0) first, then the clockwise walk. *)
      let rec go acc c remaining =
        if remaining = 0 then List.rev acc
        else go ((id_at t c, value_at t c) :: acc) (cursor_next t c) (remaining - 1)
      in
      go [] (cursor_geq a t) r.size
    end
    else begin
      (* Members of (a, b] form a prefix of the clockwise walk that starts
         just after [a] (distance from [a] grows monotonically along it),
         so stop at the first member past [b]. *)
      let rec go acc c remaining =
        if remaining = 0 then List.rev acc
        else begin
          let k = id_at t c in
          if Id.between_incl a k b then
            go ((k, value_at t c) :: acc) (cursor_next t c) (remaining - 1)
          else List.rev acc
        end
      in
      go [] (cursor_gt a t) r.size
    end

(* ---- updates ---------------------------------------------------------- *)

let singleton id v =
  R
    {
      chunks = [| { keys = [| Id.key id |]; ids = [| id |]; vals = [| v |] } |];
      starts = [| id |];
      skeys = [| Id.key id |];
      size = 1;
    }

(* Spine rebuilt from scratch when the chunk array changes shape. *)
let spine chunks =
  (Array.map (fun ch -> ch.ids.(0)) chunks,
   Array.map (fun ch -> ch.keys.(0)) chunks)

let add id v t =
  match t with
  | Empty -> singleton id v
  | R r ->
    let kx = Id.key id in
    let ci0 = chunk_le r.skeys r.starts id kx in
    let ci = if ci0 < 0 then 0 else ci0 in
    let ch = r.chunks.(ci) in
    let len = Array.length ch.ids in
    let off = lb ch id kx in
    if off < len && Id.equal ch.ids.(off) id then begin
      (* Replace payload: one chunk's value array + the spine. *)
      let vals = Array.copy ch.vals in
      vals.(off) <- v;
      let chunks = Array.copy r.chunks in
      chunks.(ci) <- { keys = ch.keys; ids = ch.ids; vals };
      R { chunks; starts = r.starts; skeys = r.skeys; size = r.size }
    end
    else begin
      let nlen = len + 1 in
      let keys = Array.make nlen kx in
      let ids = Array.make nlen id and vals = Array.make nlen v in
      Array.blit ch.keys 0 keys 0 off;
      Array.blit ch.ids 0 ids 0 off;
      Array.blit ch.vals 0 vals 0 off;
      Array.blit ch.keys off keys (off + 1) (len - off);
      Array.blit ch.ids off ids (off + 1) (len - off);
      Array.blit ch.vals off vals (off + 1) (len - off);
      if nlen <= max_chunk then begin
        let chunks = Array.copy r.chunks in
        chunks.(ci) <- { keys; ids; vals };
        let starts, skeys =
          if off = 0 then begin
            let s = Array.copy r.starts and sk = Array.copy r.skeys in
            s.(ci) <- id;
            sk.(ci) <- kx;
            (s, sk)
          end
          else (r.starts, r.skeys)
        in
        R { chunks; starts; skeys; size = r.size + 1 }
      end
      else begin
        (* Split the overfull chunk into two halves. *)
        let half = nlen / 2 in
        let left =
          {
            keys = Array.sub keys 0 half;
            ids = Array.sub ids 0 half;
            vals = Array.sub vals 0 half;
          }
        in
        let right =
          {
            keys = Array.sub keys half (nlen - half);
            ids = Array.sub ids half (nlen - half);
            vals = Array.sub vals half (nlen - half);
          }
        in
        let nch = Array.length r.chunks in
        let chunks = Array.make (nch + 1) left in
        Array.blit r.chunks 0 chunks 0 ci;
        chunks.(ci + 1) <- right;
        Array.blit r.chunks (ci + 1) chunks (ci + 2) (nch - ci - 1);
        let starts = Array.make (nch + 1) left.ids.(0) in
        let skeys = Array.make (nch + 1) left.keys.(0) in
        Array.blit r.starts 0 starts 0 ci;
        Array.blit r.skeys 0 skeys 0 ci;
        starts.(ci + 1) <- right.ids.(0);
        skeys.(ci + 1) <- right.keys.(0);
        Array.blit r.starts (ci + 1) starts (ci + 2) (nch - ci - 1);
        Array.blit r.skeys (ci + 1) skeys (ci + 2) (nch - ci - 1);
        R { chunks; starts; skeys; size = r.size + 1 }
      end
    end

let remove id t =
  match t with
  | Empty -> t
  | R r ->
    let kx = Id.key id in
    let ci = chunk_le r.skeys r.starts id kx in
    if ci < 0 then t
    else begin
      let ch = r.chunks.(ci) in
      let len = Array.length ch.ids in
      let off = lb ch id kx in
      if off >= len || not (Id.equal ch.ids.(off) id) then t
      else if r.size = 1 then Empty
      else if len = 1 then begin
        (* Chunk emptied: drop it from the spine. *)
        let nch = Array.length r.chunks in
        let chunks = Array.make (nch - 1) ch in
        Array.blit r.chunks 0 chunks 0 ci;
        Array.blit r.chunks (ci + 1) chunks ci (nch - ci - 1);
        let starts, skeys = spine chunks in
        R { chunks; starts; skeys; size = r.size - 1 }
      end
      else begin
        let nlen = len - 1 in
        let keep = if off = 0 then 1 else 0 in
        let keys = Array.make nlen ch.keys.(keep) in
        let ids = Array.make nlen ch.ids.(keep) in
        let vals = Array.make nlen ch.vals.(keep) in
        Array.blit ch.keys 0 keys 0 off;
        Array.blit ch.ids 0 ids 0 off;
        Array.blit ch.vals 0 vals 0 off;
        Array.blit ch.keys (off + 1) keys off (nlen - off);
        Array.blit ch.ids (off + 1) ids off (nlen - off);
        Array.blit ch.vals (off + 1) vals off (nlen - off);
        let nch = Array.length r.chunks in
        let can_merge nb =
          nb >= 0 && nb < nch && Array.length r.chunks.(nb).ids + nlen <= max_chunk
        in
        if nlen < min_chunk && nch > 1 && (can_merge (ci + 1) || can_merge (ci - 1))
        then begin
          (* Re-merge the shrunken chunk with a neighbour so churn-heavy
             workloads cannot fragment the spine into tiny chunks. *)
          let lo = if can_merge (ci + 1) then ci else ci - 1 in
          let l, r' =
            if lo = ci then ({ keys; ids; vals }, r.chunks.(ci + 1))
            else (r.chunks.(ci - 1), { keys; ids; vals })
          in
          let merged =
            {
              keys = Array.append l.keys r'.keys;
              ids = Array.append l.ids r'.ids;
              vals = Array.append l.vals r'.vals;
            }
          in
          let chunks = Array.make (nch - 1) merged in
          Array.blit r.chunks 0 chunks 0 lo;
          Array.blit r.chunks (lo + 2) chunks (lo + 1) (nch - lo - 2);
          let starts, skeys = spine chunks in
          R { chunks; starts; skeys; size = r.size - 1 }
        end
        else begin
          let chunks = Array.copy r.chunks in
          chunks.(ci) <- { keys; ids; vals };
          let starts, skeys =
            if off = 0 then begin
              let s = Array.copy r.starts and sk = Array.copy r.skeys in
              s.(ci) <- ids.(0);
              sk.(ci) <- keys.(0);
              (s, sk)
            end
            else (r.starts, r.skeys)
          in
          R { chunks; starts; skeys; size = r.size - 1 }
        end
      end
    end

let of_list l = List.fold_left (fun acc (id, v) -> add id v acc) empty l

(* Rebuild a ring from the first [n] entries of sorted parallel arrays,
   packing chunks at 3/4 capacity so follow-up inserts have headroom. *)
let target_chunk = 96

let build_sorted ids vals n =
  if n = 0 then Empty
  else begin
    let nchunks = (n + target_chunk - 1) / target_chunk in
    let chunks =
      Array.init nchunks (fun i ->
          let lo = i * target_chunk in
          let len = min target_chunk (n - lo) in
          {
            keys = Array.init len (fun j -> Id.key ids.(lo + j));
            ids = Array.sub ids lo len;
            vals = Array.sub vals lo len;
          })
    in
    let starts, skeys = spine chunks in
    R { chunks; starts; skeys; size = n }
  end

let filter f t =
  match t with
  | Empty -> t
  | R r ->
    (* Single pass: survivors are counted as they are collected instead of
       the seed's extra O(n) [M.cardinal] walk over the filtered map. *)
    let ids = Array.make r.size r.chunks.(0).ids.(0) in
    let vals = Array.make r.size r.chunks.(0).vals.(0) in
    let n = ref 0 in
    iter
      (fun k v ->
        if f k v then begin
          ids.(!n) <- k;
          vals.(!n) <- v;
          incr n
        end)
      t;
    if !n = r.size then t else build_sorted ids vals !n

module M = Map.Make (struct
  type t = Id.t

  let compare = Id.compare
end)

(* The member count rides alongside the map: [cardinal] sits on hot paths
   (per-lookup step limits, per-step loop guards), where Map.cardinal's
   O(n) tree walk turns whole experiments quadratic in the population. *)
type 'a t = { m : 'a M.t; size : int }

let empty = { m = M.empty; size = 0 }

let cardinal r = r.size

let is_empty r = r.size = 0

let add id v r =
  if M.mem id r.m then { r with m = M.add id v r.m }
  else { m = M.add id v r.m; size = r.size + 1 }

let remove id r =
  if M.mem id r.m then { m = M.remove id r.m; size = r.size - 1 } else r

let mem id r = M.mem id r.m

let find id r = M.find_opt id r.m

(* First member with identifier strictly greater than [x] in the linear
   order, wrapping to the minimum binding. *)
let successor x r =
  if is_empty r then None
  else
    match M.find_first_opt (fun k -> Id.compare k x > 0) r.m with
    | Some (k, v) -> Some (k, v)
    | None -> M.min_binding_opt r.m

let successor_incl x r =
  if is_empty r then None
  else
    match M.find_first_opt (fun k -> Id.compare k x >= 0) r.m with
    | Some (k, v) -> Some (k, v)
    | None -> M.min_binding_opt r.m

let predecessor x r =
  if is_empty r then None
  else
    match M.find_last_opt (fun k -> Id.compare k x < 0) r.m with
    | Some (k, v) -> Some (k, v)
    | None -> M.max_binding_opt r.m

let k_successors k x r =
  let n = min k r.size in
  let rec go acc cur remaining =
    if remaining = 0 then List.rev acc
    else
      match successor cur r with
      | None -> List.rev acc
      | Some (id, v) -> go ((id, v) :: acc) id (remaining - 1)
  in
  go [] x n

let min_binding r = M.min_binding_opt r.m

let to_list r = M.bindings r.m

let of_list l = List.fold_left (fun acc (id, v) -> add id v acc) empty l

let iter f r = M.iter f r.m

let fold f r acc = M.fold f r.m acc

let filter f r =
  let m = M.filter f r.m in
  { m; size = M.cardinal m }

let members_between a b r =
  M.fold (fun k v acc -> if Id.between_incl a k b then (k, v) :: acc else acc) r.m []
  |> List.sort (fun (k1, _) (k2, _) ->
       Id.compare (Id.distance a k1) (Id.distance a k2))

(** Flat 128-bit labels and circular-namespace arithmetic.

    ROFL identifiers are semantics-free 128-bit values living on a ring of
    size 2^128 (the paper, §2.1).  This module provides unsigned ordering,
    clockwise distance, interval membership (the "between but not past"
    predicate greedy routing relies on), and the digit/prefix views used by
    proximity finger tables. *)

type t
(** An immutable 128-bit identifier. *)

val zero : t
val max_value : t
(** All-ones, the ID immediately counter-clockwise of {!zero}. *)

val of_int64_pair : int64 -> int64 -> t
(** [of_int64_pair hi lo]. *)

val to_int64_pair : t -> int64 * int64

val of_int : int -> t
(** Embeds a non-negative integer into the low bits. *)

val compare : t -> t -> int
(** Total unsigned order (not ring order).  Allocation-free. *)

val equal : t -> t -> bool

val hash : t -> int
(** Mixed-word avalanche hash over both 64-bit halves; allocation-free. *)

val key : t -> int
(** The top 62 bits of the {!compare} order packed into an immediate int in
    [\[0, 2^62)]: [key x < key y] implies [compare x y < 0], and unequal
    keys decide the order outright.  Lets flat search structures scan
    contiguous unboxed [int array]s (differences of two keys cannot
    overflow, enabling branchless sign-mask selects) and fall back to the
    full 128-bit [compare] only on key ties.  Allocation-free. *)

val succ_id : t -> t
(** Clockwise neighbour (wraps from all-ones to zero). *)

val pred_id : t -> t
(** Counter-clockwise neighbour (wraps from zero to all-ones). *)

val add : t -> t -> t
(** Addition modulo 2^128. *)

val sub : t -> t -> t
(** Subtraction modulo 2^128. *)

val distance : t -> t -> t
(** [distance a b] is the clockwise distance from [a] to [b]
    (i.e. [b - a] mod 2^128).  [distance a a = zero]. *)

val between : t -> t -> t -> bool
(** [between a x b] holds when walking clockwise from [a] one meets [x]
    strictly before [b]; i.e. [x ∈ (a, b)] on the ring.  With [a = b] the
    interval is the whole ring minus [a].  Allocation-free: the distances
    are compared word-by-word, never materialised. *)

val between_incl : t -> t -> t -> bool
(** [x ∈ (a, b\]] on the ring: the "closest but not past the destination"
    test.  With [a = b] every [x] qualifies (full ring).  Allocation-free. *)

val closer_clockwise : target:t -> t -> t -> bool
(** [closer_clockwise ~target x y] holds when [x] is strictly closer to
    [target] than [y] is, measuring clockwise distance *from* each candidate
    *to* the target — the greedy-routing progress measure.
    Allocation-free. *)

val compare_dist : t -> t -> t -> t -> int
(** [compare_dist a b c d] orders the clockwise distance [a → b] against
    [c → d] without building either distance value; equivalent to
    [compare (distance a b) (distance c d)] but allocation-free.  The
    preferred comparator for sorting candidates by ring distance. *)

val bit : t -> int -> int
(** [bit id i] is bit [i] counted from the most significant (i = 0). *)

val digit : t -> base_bits:int -> int -> int
(** [digit id ~base_bits i] is the [i]-th base-2^base_bits digit from the
    top, for Pastry-style prefix tables. *)

val common_prefix_bits : t -> t -> int
(** Length of the shared most-significant-bit prefix (0..128). *)

val with_low32 : t -> int32 -> t
(** Replace the low 32 bits — used for group identifiers [(G, x)] where the
    group is the high 96 bits and the suffix is the low 32 (§5.2). *)

val low32 : t -> int32

val group_key : t -> t
(** The identifier with its 32-bit suffix zeroed: the anycast/multicast group
    [G] of an [(G, x)] identifier. *)

val same_group : t -> t -> bool

val random : Rofl_util.Prng.t -> t
(** Uniformly random identifier. *)

val of_bytes_exn : string -> t
(** From exactly 16 big-endian bytes. *)

val to_bytes : t -> string

val to_hex : t -> string

val of_hex_exn : string -> t
(** Inverse of {!to_hex}; raises [Invalid_argument] on malformed input. *)

val to_short_string : t -> string
(** First 8 hex digits, for logs. *)

val pp : Format.formatter -> t -> unit

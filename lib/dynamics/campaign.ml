module Id = Rofl_idspace.Id
module Prng = Rofl_util.Prng
module Stats = Rofl_util.Stats
module Graph = Rofl_topology.Graph
module Isp = Rofl_topology.Isp
module Shard = Rofl_netsim.Shard
module Proto = Rofl_proto.Proto
module Identity = Rofl_crypto.Identity
module Churn = Rofl_workload.Churn
module Hostdist = Rofl_workload.Hostdist
module Artifact = Rofl_doctor.Artifact
module Audit = Rofl_doctor.Audit

type params = {
  horizon_ms : float;
  arrival_rate_per_s : float;
  mean_lifetime_s : float;
  move_fraction : float;
  crash_fraction : float;
  lookup_rate_per_s : float;
  lookup_warmup_ms : float;
  drain_max_ms : float;
  bootstrap_hosts : int;
  proto_cfg : Proto.config;
}

let default_params =
  {
    horizon_ms = 20_000.0;
    arrival_rate_per_s = 1.0;
    mean_lifetime_s = 10.0;
    move_fraction = 0.1;
    crash_fraction = 0.2;
    lookup_rate_per_s = 10.0;
    lookup_warmup_ms = 1_000.0;
    drain_max_ms = 30_000.0;
    bootstrap_hosts = 0;
    proto_cfg = Proto.default_config;
  }

type report = {
  name : string;
  params : params;
  joins : int;
  leaves : int;
  moves : int;
  crashes : int;
  join_failures : int;
  lookups : int;
  lookups_ok : int;
  success_rate : float;       (* 1.0 when no lookup was launched *)
  lat_p50_ms : float;         (* over successful lookups; 0 when none *)
  lat_p95_ms : float;
  lat_p99_ms : float;
  stale_count : int;
  stale_p95_ms : float;
  stale_unrepaired : int;
  reconverged : bool;
  reconverge_ms : float;      (* time from the last churn event to convergence *)
  failovers : int;
  rpc_timeouts : int;
  wasted_hops : int;          (* losing α-branch traversals (duplicate work) *)
  cancellations : int;        (* cooperative branch cancellations issued *)
  auto_state : (float * float * int) option; (* N̂, period mult, succ-list cap *)
  ctrl_msgs : (string * int) list; (* per category, sorted *)
  total_msgs : int;
  msgs_per_event : float;
  peak_queue : int;
  events_executed : int;
  event_fingerprint : int;
  sim_end_ms : float;
  audit : Audit.summary option;
  join_rejects : int;         (* join claims turned away by verification *)
  promo_rejects : int;        (* failover candidates that failed verification *)
  tainted : int;              (* forged identifiers resident at campaign end *)
  sybils : int;               (* mined sybil identifiers joined by an Eclipse fault *)
  grind_draws : int;          (* keypair draws the attacker paid to mine them *)
  victim_capture : float;     (* pre-crash victim-arc sweep: fraction of targets
                                 resolving to a sybil; -1 without an eclipse *)
  victim_repair : float;      (* post-drain victim-arc sweep: fraction resolving
                                 to the true owner; -1 without an eclipse *)
}

(* Derivation seams: every random stream of a campaign is its own generator
   derived from (seed, purpose), and all draws happen either before the
   engine runs or inside engine events (whose order is deterministic), so a
   campaign is a pure function of (seed, graph, params) — the property the
   jobs-determinism tests pin. *)
let stream seed purpose = Prng.create (Hashtbl.hash (seed, purpose, 0x0c4a7))

(* Per-event randomness is keyed by the event itself, never by its position
   in the trace: dropping an event during shrinking must not reshuffle the
   gateway of every later one, or the shrinker's oracle would be chasing a
   different campaign on every candidate. *)
let gateway_for ~seed gateways kind seq =
  let r = Prng.create (Hashtbl.hash (seed, "gateway", kind, seq, 0x0c4a7)) in
  gateways.(Prng.int r (Array.length gateways))

(* Fresh identifiers for every session, unique against the bootstrap router
   labels and each other. *)
let session_ids ~seed ~taken n =
  let rng = stream seed "session-ids" in
  let used = Hashtbl.create (2 * n) in
  List.iter (fun id -> Hashtbl.replace used id ()) taken;
  Array.init n (fun _ ->
      let rec fresh () =
        let id = Id.random rng in
        if Hashtbl.mem used id then fresh ()
        else begin
          Hashtbl.replace used id ();
          id
        end
      in
      fresh ())

let percentile_or xs p ~default =
  match xs with [] -> default | _ -> Stats.percentile xs p

(* First member strictly clockwise of [id]: the far end of the arc [id]
   owns under the data plane's predecessor-owner semantics.  [id] itself
   when the list is empty. *)
let ring_successor members id =
  List.fold_left
    (fun best m ->
      if Id.equal m id then best
      else
        match best with
        | None -> Some m
        | Some b -> if Id.compare_dist id m id b < 0 then Some m else best)
    None members
  |> Option.value ~default:id

(* Ring owner of [id] under the data plane's settle rule — the member
   closest clockwise *to* [id] without passing it (its predecessor): the
   greatest member <= id in unsigned order, wrapping to the largest member
   when [id] precedes them all.  [members] must be sorted. *)
let ring_owner members id =
  let n = Array.length members in
  if n = 0 then None
  else begin
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Id.compare members.(mid) id <= 0 then lo := mid + 1 else hi := mid
    done;
    Some members.(if !lo = 0 then n - 1 else !lo - 1)
  end

(* Keypair-mining budget per sybil: expected draws per hit is the member
   count (the arc is ~1/n of the ring), so this covers rings four orders of
   magnitude larger than the attack campaigns run. *)
let sybil_grind_budget = 500_000

(* Victim-arc SLO sweep: 64 identifiers sampled uniformly from the arc the
   victim's label owns, resolved with the pure-read data-plane walk from
   content-keyed gateways.  Uniform sampling matters: under
   predecessor-owner semantics a resident sybil captures exactly the
   sub-arc clockwise of it, so uniform targets measure the captured share
   of the victim's keyspace. *)
let victim_sweep_len = 64

let churn_events ~seed (p : params) =
  Churn.generate (stream seed "churn") ~horizon_ms:p.horizon_ms
    ~arrival_rate_per_s:p.arrival_rate_per_s ~mean_lifetime_s:p.mean_lifetime_s
    ~move_fraction:p.move_fraction ~crash_fraction:p.crash_fraction ()
  |> List.map (fun e -> Artifact.Churn e)

let run_events ~seed ~name ~graph ~gateways ?audit ?(shards = 1) ?pool
    ?(groups = [||]) ?behaviours (p : params) events =
  if gateways = [||] then invalid_arg "Campaign.run_events: no gateway routers";
  (* Pre-size the per-shard lookup tables for the open-loop concurrency
     Little's law predicts (rate x worst-case response time). *)
  let lookup_hint =
    16
    + int_of_float
        (ceil (p.lookup_rate_per_s *. p.proto_cfg.Proto.lookup_timeout_ms /. 1000.0))
  in
  let proto =
    Proto.create ~rng:(stream seed "proto") ~cfg:p.proto_cfg ~shards ?pool
      ~bootstrap_hosts:p.bootstrap_hosts ~lookup_hint ~groups ?behaviours graph
  in
  let coord = Proto.coordinator proto in
  let trace =
    List.filter_map (function Artifact.Churn e -> Some e | Artifact.Fault _ -> None) events
  in
  let n_sessions =
    List.fold_left (fun acc ev -> max acc (Churn.event_seq ev + 1)) 0 trace
  in
  let ids = session_ids ~seed ~taken:(Proto.members proto) n_sessions in
  let planned =
    List.map
      (fun ev ->
        match ev with
        | Artifact.Churn (Churn.Join { at_ms; seq }) ->
          (at_ms, `Join (seq, gateway_for ~seed gateways "join" seq))
        | Artifact.Churn (Churn.Leave { at_ms; seq }) -> (at_ms, `Leave seq)
        | Artifact.Churn (Churn.Move { at_ms; seq }) ->
          (at_ms, `Move (seq, gateway_for ~seed gateways "move" seq))
        | Artifact.Churn (Churn.Crash { at_ms; seq }) -> (at_ms, `Crash seq)
        | Artifact.Fault (Artifact.Cross_splice { at_ms }) -> (at_ms, `Cross_splice)
        | Artifact.Fault (Artifact.Stab_off { at_ms }) -> (at_ms, `Stab_off)
        | Artifact.Fault (Artifact.Eclipse { at_ms; victim; count; crash_at_ms }) ->
          (at_ms, `Eclipse (victim, count, crash_at_ms))
        | Artifact.Fault (Artifact.Poison { at_ms; fraction }) ->
          (at_ms, `Poison fraction)
        | Artifact.Fault (Artifact.Forge { at_ms; count }) -> (at_ms, `Forge count))
      events
  in
  (* An eclipse carries two derived moments — the coordinated sybil crash
     and a pre-crash victim sweep — scheduled up front at plan time (their
     times are part of the fault, so the plan stays a pure function of the
     event list).  The sweep sits strictly between injection and crash so
     equal-time global ordering never matters. *)
  let planned =
    planned
    @ List.concat_map
        (function
          | Artifact.Fault (Artifact.Eclipse { at_ms; crash_at_ms; _ }) ->
            let sweep_at =
              if crash_at_ms >= 0.0 then
                Float.max (at_ms +. 0.25) (crash_at_ms -. 0.5)
              else p.horizon_ms
            in
            (sweep_at, `Victim_sweep)
            :: (if crash_at_ms >= 0.0 then [ (crash_at_ms, `Sybil_crash) ] else [])
          | _ -> [])
        events
  in
  (* Attack-lab state, written only inside global events. *)
  let sybils = ref [] in
  let sybil_set = Hashtbl.create 16 in
  let grind_draws = ref 0 in
  let eclipse_targets = ref None in
  let victim_capture = ref (-1.0) in
  (* Reconvergence is measured from the last *churn* event: injected faults
     are the thing being diagnosed, not workload to recover from. *)
  let last_event_ms =
    List.fold_left (fun acc ev -> Float.max acc (Churn.event_time ev)) 0.0 trace
  in
  (* Campaign-side session liveness, for lookup targeting: seq -> join time.
     Maintained by the scheduled churn events themselves. *)
  let live = Hashtbl.create 64 in
  (* Churn closures read and mutate state across every shard (departures,
     cross-shard joins), so they run as global events: every shard parked at
     the event's time — and global times are exactly the sync points the
     auditor samples, identical at any shard count. *)
  List.iter
    (fun (at_ms, action) ->
      Shard.at_global coord ~time_ms:at_ms (fun () ->
          match action with
          | `Join (seq, gw) ->
            Hashtbl.replace live seq at_ms;
            Proto.join proto ~gateway:gw ids.(seq)
          | `Leave seq ->
            Hashtbl.remove live seq;
            ignore (Proto.leave proto ids.(seq))
          | `Move (seq, gw) ->
            (* The session stays alive through a move; only its router
               changes.  Keep the original join time for warmup purposes. *)
            ignore (Proto.move proto ~new_gateway:gw ids.(seq))
          | `Crash seq ->
            Hashtbl.remove live seq;
            ignore (Proto.crash proto ids.(seq))
          | `Cross_splice -> ignore (Proto.inject_cross_splice proto)
          | `Stab_off -> Proto.stop_stabilizer proto
          | `Eclipse (victim, count, _) ->
            (* Mine self-certifying keypairs whose identifiers land in the
               arc the victim's label owns, then join them with their own
               (genuine!) credentials from content-keyed gateways.
               Verification admits them — mined identifiers really are
               hashes of their keys; that honest negative is the point.
               What the attacker buys: the victim's successor list fills
               with co-conspirators, armed for a coordinated crash. *)
            let vid = Proto.router_label victim in
            let arc_end = ring_successor (Proto.members proto) vid in
            let g =
              Prng.create (Hashtbl.hash (seed, "eclipse-mine", victim, 0x0c4a7))
            in
            let accept id =
              Id.between vid id arc_end
              && (not (Hashtbl.mem sybil_set id))
              && not (Proto.is_member proto id)
            in
            let rec mine k acc =
              if k = 0 then acc
              else begin
                let kp, draws = Identity.grind g ~accept ~budget:sybil_grind_budget in
                grind_draws := !grind_draws + draws;
                match kp with
                | None -> acc
                | Some kp ->
                  let sid = Identity.id_of_keypair kp in
                  Hashtbl.replace sybil_set sid ();
                  mine (k - 1) ((sid, kp) :: acc)
              end
            in
            let mined = List.rev (mine count []) in
            (* All sybils join through one content-keyed gateway: the
               attacker hosts them on machines it controls, which is also
               what concentrates the victim's backup tail in one diversity
               group — the pattern the per-PoP quota breaks up. *)
            let attacker_gw = gateway_for ~seed gateways "sybil" victim in
            List.iter
              (fun (sid, kp) -> Proto.join proto ~gateway:attacker_gw ~cred:kp sid)
              mined;
            sybils := mined;
            (* SLO probe targets: uniform over the arc the victim owns,
               fixed now so the pre-crash and post-drain sweeps measure the
               same keyspace.  Rejection sampling from a content-keyed
               stream; expected draws per target is the member count. *)
            let tg = Prng.create (Hashtbl.hash (seed, "victim-targets", victim, 0x0c4a7)) in
            let targets = Array.make victim_sweep_len vid in
            let budget = ref 5_000_000 in
            for i = 0 to victim_sweep_len - 1 do
              let rec draw () =
                decr budget;
                let id = Id.random tg in
                if Id.between vid id arc_end then id
                else if !budget <= 0 then Id.succ_id vid
                else draw ()
              in
              targets.(i) <- draw ()
            done;
            eclipse_targets := Some targets
          | `Sybil_crash ->
            List.iter (fun (sid, _) -> ignore (Proto.crash proto sid)) !sybils
          | `Poison fraction ->
            (* Flip a content-keyed subset of routers to successor-list
               poisoning: a partial Fisher–Yates over the router indices
               whose draws depend only on (seed, n), never on shard
               layout. *)
            let n = Graph.n graph in
            let k =
              max 0 (min n (int_of_float (Float.round (fraction *. float_of_int n))))
            in
            let g = Prng.create (Hashtbl.hash (seed, "poison-routers", 0x0c4a7)) in
            let order = Array.init n (fun i -> i) in
            for i = 0 to k - 1 do
              let j = i + Prng.int g (n - i) in
              let tmp = order.(i) in
              order.(i) <- order.(j);
              order.(j) <- tmp;
              Proto.set_behaviour proto order.(i) Proto.Poison_succs
            done
          | `Forge count ->
            (* Joins claiming identifiers whose credentials belong to
               someone else — the workload the verification gate rejects
               (and, with it off, admits as tainted residents). *)
            let g = Prng.create (Hashtbl.hash (seed, "forge", 0x0c4a7)) in
            for i = 0 to count - 1 do
              let claimed = Id.random g in
              let cred = Identity.credential_for (Id.random g) in
              if not (Proto.is_member proto claimed) then
                Proto.join proto
                  ~gateway:(gateway_for ~seed gateways "forge" i)
                  ~cred claimed
            done
          | `Victim_sweep ->
            (match !eclipse_targets with
             | None -> ()
             | Some targets ->
               let og =
                 Prng.create (Hashtbl.hash (seed, "victim-origins", 0x0c4a7))
               in
               let captured = ref 0 in
               Array.iter
                 (fun target ->
                   let from = gateways.(Prng.int og (Array.length gateways)) in
                   match Proto.lookup_owner proto ~from target with
                   | Some owner when Hashtbl.mem sybil_set owner -> incr captured
                   | Some _ | None -> ())
                 targets;
               victim_capture :=
                 float_of_int !captured /. float_of_int victim_sweep_len)))
    planned;
  (* Open-loop lookup workload: Poisson launch times fixed up front, target
     and origin drawn at launch time from dedicated streams.  Outcomes
     accumulate in a bucket per origin shard — callbacks fire in shard
     context, where pushing onto another shard's list would race — and are
     merged into one deterministic order after the run. *)
  let buckets = Array.init (Proto.shard_count proto) (fun _ -> ref []) in
  let launched = ref 0 in
  let looktime_rng = stream seed "lookup-times" in
  let looktarget_rng = stream seed "lookup-targets" in
  let mean_gap_ms = 1000.0 /. p.lookup_rate_per_s in
  let rec plan_lookups at =
    let at = at +. Prng.exponential looktime_rng mean_gap_ms in
    if at < p.horizon_ms then begin
      Shard.at_global coord ~time_ms:at (fun () ->
          let eligible =
            Hashtbl.fold
              (fun seq joined acc ->
                if joined +. p.lookup_warmup_ms <= at then seq :: acc else acc)
              live []
            |> List.sort compare
          in
          let target =
            match eligible with
            | [] ->
              (* Nobody to look up yet: exercise the always-alive ring of
                 router identifiers instead of skipping the sample. *)
              Proto.router_label (Prng.int looktarget_rng (Graph.n graph))
            | _ ->
              let seq = List.nth eligible (Prng.int looktarget_rng (List.length eligible)) in
              ids.(seq)
          in
          let from = gateways.(Prng.int looktarget_rng (Array.length gateways)) in
          let bucket = buckets.(Proto.shard_of_router proto from) in
          incr launched;
          Proto.lookup_async proto ~from target (fun o -> bucket := o :: !bucket));
      plan_lookups at
    end
  in
  if p.lookup_rate_per_s > 0.0 then plan_lookups 0.0;
  (* The auditor rides the coordinator's monitor hook: a pure observer
     firing at shard sync points, so attaching one changes no table. *)
  let auditor =
    Option.map
      (fun cfg ->
        let a = Audit.create cfg proto in
        Audit.install a;
        a)
      audit
  in
  (* Run: stabilisation timers tick throughout; after the horizon, keep
     stabilising until the ring reconverges and every lookup has resolved. *)
  Proto.start_stabilizer proto;
  Shard.run_until coord p.horizon_ms;
  let deadline = p.horizon_ms +. p.drain_max_ms in
  let period = p.proto_cfg.Proto.stabilize_period_ms in
  let rec drain () =
    let now = Shard.now coord in
    if Proto.ring_converged proto && Proto.lookups_outstanding proto = 0 then Some now
    else if now >= deadline then None
    else begin
      Shard.run_until coord (now +. period);
      drain ()
    end
  in
  let converged_at = drain () in
  Proto.stop_stabilizer proto;
  let audit_summary =
    Option.map
      (fun a ->
        Audit.detach a;
        Audit.summary a)
      auditor
  in
  let s = Proto.stats proto in
  (* Merge the per-shard buckets into one order that no shard layout can
     perturb: completion time, then issue time, then target identifier. *)
  let outcomes =
    Array.to_list buckets
    |> List.concat_map (fun b -> List.rev !b)
    |> List.sort (fun (a : Proto.lookup_outcome) (b : Proto.lookup_outcome) ->
           let c = compare a.Proto.completed_ms b.Proto.completed_ms in
           if c <> 0 then c
           else
             let c = compare a.Proto.issued_ms b.Proto.issued_ms in
             if c <> 0 then c else Id.compare a.Proto.target b.Proto.target)
  in
  let ok_lat =
    List.filter_map
      (fun (o : Proto.lookup_outcome) ->
        if o.Proto.ok then Some (o.Proto.completed_ms -. o.Proto.issued_ms) else None)
      outcomes
  in
  let lookups_ok = List.length ok_lat in
  let lookups = List.length outcomes in
  let stale = Proto.stale_windows proto in
  (* Post-drain victim sweep: did the ring repair the eclipsed arc?  Each
     target's ground truth is its ring owner (predecessor) among the
     *final* membership — the sybils are gone if the fault crashed them,
     so the truth is the victim's label again. *)
  let victim_repair =
    match !eclipse_targets with
    | None -> -1.0
    | Some targets ->
      let members = Array.of_list (Proto.members proto) in
      let og = Prng.create (Hashtbl.hash (seed, "victim-origins-post", 0x0c4a7)) in
      let good = ref 0 in
      Array.iter
        (fun target ->
          let truth = ring_owner members target in
          let from = gateways.(Prng.int og (Array.length gateways)) in
          match (Proto.lookup_owner proto ~from target, truth) with
          | Some owner, Some truth when Id.equal owner truth -> incr good
          | _ -> ())
        targets;
      float_of_int !good /. float_of_int victim_sweep_len
  in
  let joins_evt, leaves_evt, moves_evt, crashes_evt = Churn.count trace in
  let events_n = joins_evt + leaves_evt + moves_evt + crashes_evt in
  let sim_end = Shard.now coord in
  {
    name;
    params = p;
    joins = s.Proto.joins_completed;
    leaves = s.Proto.leaves_completed;
    moves = s.Proto.moves_completed;
    crashes = s.Proto.crashes;
    join_failures = s.Proto.joins_failed;
    lookups;
    lookups_ok;
    success_rate =
      (if lookups = 0 then 1.0 else float_of_int lookups_ok /. float_of_int lookups);
    lat_p50_ms = percentile_or ok_lat 50.0 ~default:0.0;
    lat_p95_ms = percentile_or ok_lat 95.0 ~default:0.0;
    lat_p99_ms = percentile_or ok_lat 99.0 ~default:0.0;
    stale_count = List.length stale;
    stale_p95_ms = percentile_or stale 95.0 ~default:0.0;
    stale_unrepaired = Proto.stale_open proto;
    reconverged = (match converged_at with Some _ -> true | None -> false);
    reconverge_ms =
      (match converged_at with
       | Some at -> Float.max 0.0 (at -. last_event_ms)
       | None -> Float.nan);
    failovers = s.Proto.failovers;
    rpc_timeouts = s.Proto.rpc_timeouts;
    wasted_hops = Rofl_netsim.Metrics.wasted_hops (Proto.metrics proto);
    cancellations = Rofl_netsim.Metrics.cancellations (Proto.metrics proto);
    auto_state = Proto.auto_state proto;
    ctrl_msgs = Rofl_netsim.Metrics.categories (Proto.metrics proto);
    total_msgs = s.Proto.messages;
    msgs_per_event =
      (if events_n = 0 then 0.0
       else float_of_int s.Proto.messages /. float_of_int events_n);
    peak_queue = Shard.peak_global coord;
    events_executed = Shard.executed_total coord;
    event_fingerprint = Shard.fingerprint coord;
    sim_end_ms = sim_end;
    audit = audit_summary;
    join_rejects = s.Proto.join_rejects;
    promo_rejects = s.Proto.promo_rejects;
    tainted = Proto.tainted_count proto;
    sybils = List.length !sybils;
    grind_draws = !grind_draws;
    victim_capture = !victim_capture;
    victim_repair;
  }

let run_graph ~seed ~name ~graph ~gateways ?audit ?shards ?pool ?groups ?behaviours
    (p : params) =
  run_events ~seed ~name ~graph ~gateways ?audit ?shards ?pool ?groups ?behaviours p
    (churn_events ~seed p)

let run ~seed ~profile ?audit ?shards ?pool ?(events : Artifact.event list option)
    (p : params) =
  (* Same topology derivation as the experiment engine's intra runs, so a
     churn campaign on as3967 sees the same network fig5/6/7 measure. *)
  let rng = Prng.create (seed + Hashtbl.hash profile.Isp.profile_name) in
  let isp = Isp.generate rng profile in
  let gateways = Array.of_list (Isp.edge_routers isp) in
  let events = match events with Some e -> e | None -> churn_events ~seed p in
  (* Router → PoP is the diversity-group key of the quota defenses. *)
  run_events ~seed ~name:profile.Isp.profile_name ~graph:isp.Isp.graph ~gateways
    ?audit ?shards ?pool ~groups:isp.Isp.pop_of_router p events

(* Round-tripping params through repro artifacts.  Hex floats ([%h]) keep
   every scalar bit-identical across write/read, which the shrinker's
   determinism depends on. *)

let params_to_strings (p : params) =
  let f = Printf.sprintf "%h" in
  let i = string_of_int in
  let b = string_of_bool in
  let c = p.proto_cfg in
  [
    ("horizon_ms", f p.horizon_ms);
    ("arrival_rate_per_s", f p.arrival_rate_per_s);
    ("mean_lifetime_s", f p.mean_lifetime_s);
    ("move_fraction", f p.move_fraction);
    ("crash_fraction", f p.crash_fraction);
    ("lookup_rate_per_s", f p.lookup_rate_per_s);
    ("lookup_warmup_ms", f p.lookup_warmup_ms);
    ("drain_max_ms", f p.drain_max_ms);
    ("bootstrap_hosts", i p.bootstrap_hosts);
    ("stabilize_period_ms", f c.Proto.stabilize_period_ms);
    ("succ_list_len", i c.Proto.succ_list_len);
    ("rpc_timeout_ms", f c.Proto.rpc_timeout_ms);
    ("rpc_retries", i c.Proto.rpc_retries);
    ("rpc_backoff", f c.Proto.rpc_backoff);
    ("pred_timeout_ms", f c.Proto.pred_timeout_ms);
    ("join_timeout_ms", f c.Proto.join_timeout_ms);
    ("join_retries", i c.Proto.join_retries);
    ("lookup_timeout_ms", f c.Proto.lookup_timeout_ms);
    ("lookup_retries", i c.Proto.lookup_retries);
    ("stuck_wait_ms", f c.Proto.stuck_wait_ms);
    ("stuck_wait_limit", i c.Proto.stuck_wait_limit);
    ("untwist", b c.Proto.untwist);
    ("lookup_alpha", i c.Proto.lookup_alpha);
    ("pcache_capacity", i c.Proto.pcache_capacity);
    ("pcache_refresh_ttl_ms", f c.Proto.pcache_refresh_ttl_ms);
    ("pcache_refresh_budget", i c.Proto.pcache_refresh_budget);
    ("stabilize_auto", b c.Proto.stabilize_auto);
    ("verify_joins", b c.Proto.verify_joins);
    ("succ_quota", i c.Proto.succ_quota);
    ("quota_enforce", b c.Proto.quota_enforce);
  ]

let params_of_strings kvs =
  let ( let* ) = Result.bind in
  let fl k v =
    match float_of_string_opt v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "param %s: malformed float %S" k v)
  in
  let it k v =
    match int_of_string_opt v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "param %s: malformed int %S" k v)
  in
  let bl k v =
    match bool_of_string_opt v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "param %s: malformed bool %S" k v)
  in
  List.fold_left
    (fun acc (k, v) ->
      let* p = acc in
      let c = p.proto_cfg in
      match k with
      | "horizon_ms" -> let* x = fl k v in Ok { p with horizon_ms = x }
      | "arrival_rate_per_s" -> let* x = fl k v in Ok { p with arrival_rate_per_s = x }
      | "mean_lifetime_s" -> let* x = fl k v in Ok { p with mean_lifetime_s = x }
      | "move_fraction" -> let* x = fl k v in Ok { p with move_fraction = x }
      | "crash_fraction" -> let* x = fl k v in Ok { p with crash_fraction = x }
      | "lookup_rate_per_s" -> let* x = fl k v in Ok { p with lookup_rate_per_s = x }
      | "lookup_warmup_ms" -> let* x = fl k v in Ok { p with lookup_warmup_ms = x }
      | "drain_max_ms" -> let* x = fl k v in Ok { p with drain_max_ms = x }
      | "bootstrap_hosts" -> let* x = it k v in Ok { p with bootstrap_hosts = x }
      | "stabilize_period_ms" ->
        let* x = fl k v in
        Ok { p with proto_cfg = { c with Proto.stabilize_period_ms = x } }
      | "succ_list_len" ->
        let* x = it k v in
        Ok { p with proto_cfg = { c with Proto.succ_list_len = x } }
      | "rpc_timeout_ms" ->
        let* x = fl k v in
        Ok { p with proto_cfg = { c with Proto.rpc_timeout_ms = x } }
      | "rpc_retries" ->
        let* x = it k v in
        Ok { p with proto_cfg = { c with Proto.rpc_retries = x } }
      | "rpc_backoff" ->
        let* x = fl k v in
        Ok { p with proto_cfg = { c with Proto.rpc_backoff = x } }
      | "pred_timeout_ms" ->
        let* x = fl k v in
        Ok { p with proto_cfg = { c with Proto.pred_timeout_ms = x } }
      | "join_timeout_ms" ->
        let* x = fl k v in
        Ok { p with proto_cfg = { c with Proto.join_timeout_ms = x } }
      | "join_retries" ->
        let* x = it k v in
        Ok { p with proto_cfg = { c with Proto.join_retries = x } }
      | "lookup_timeout_ms" ->
        let* x = fl k v in
        Ok { p with proto_cfg = { c with Proto.lookup_timeout_ms = x } }
      | "lookup_retries" ->
        let* x = it k v in
        Ok { p with proto_cfg = { c with Proto.lookup_retries = x } }
      | "stuck_wait_ms" ->
        let* x = fl k v in
        Ok { p with proto_cfg = { c with Proto.stuck_wait_ms = x } }
      | "stuck_wait_limit" ->
        let* x = it k v in
        Ok { p with proto_cfg = { c with Proto.stuck_wait_limit = x } }
      | "untwist" ->
        let* x = bl k v in
        Ok { p with proto_cfg = { c with Proto.untwist = x } }
      | "lookup_alpha" ->
        let* x = it k v in
        Ok { p with proto_cfg = { c with Proto.lookup_alpha = x } }
      | "pcache_capacity" ->
        let* x = it k v in
        Ok { p with proto_cfg = { c with Proto.pcache_capacity = x } }
      | "pcache_refresh_ttl_ms" ->
        let* x = fl k v in
        Ok { p with proto_cfg = { c with Proto.pcache_refresh_ttl_ms = x } }
      | "pcache_refresh_budget" ->
        let* x = it k v in
        Ok { p with proto_cfg = { c with Proto.pcache_refresh_budget = x } }
      | "stabilize_auto" ->
        let* x = bl k v in
        Ok { p with proto_cfg = { c with Proto.stabilize_auto = x } }
      | "verify_joins" ->
        let* x = bl k v in
        Ok { p with proto_cfg = { c with Proto.verify_joins = x } }
      | "succ_quota" ->
        let* x = it k v in
        Ok { p with proto_cfg = { c with Proto.succ_quota = x } }
      | "quota_enforce" ->
        let* x = bl k v in
        Ok { p with proto_cfg = { c with Proto.quota_enforce = x } }
      | _ -> Error (Printf.sprintf "unknown param %S" k))
    (Ok default_params) kvs

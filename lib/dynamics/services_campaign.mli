(** Service-discovery campaigns: TTL'd provider records, republish,
    resolver caching, and flash-crowd resolution demand over one running
    actor network.

    A campaign registers [services x providers_per_service] provider
    intents at content-keyed edge gateways, then drives an open loop of
    Zipf-skewed resolutions ({!Rofl_workload.Services}) batched on a tick
    cadence through {!Rofl_services.Directory.resolve_batch} — cache hits
    local, misses fused into one priced
    {!Rofl_proto.Proto.lookup_owner_batch} walk per tick.  Provider flaps
    toggle intents (the stale-answer source), republish runs on the
    directory's phase-staggered schedule (or all at once as a storm), and
    TTL sweeps drop decayed records.  The report is the layer's SLO sheet:
    resolution correctness against the intent oracle, latency percentiles,
    cache hit ratio, stale-answer rate, and control-message cost.

    Determinism: every directory mutation and every resolution batch runs
    in a global event with all shards parked, and all randomness derives
    from (seed, purpose) or per-event content keys — reports are
    byte-identical at any [--shards]/[--jobs]. *)

type params = {
  horizon_ms : float;
  drain_ms : float;            (** extra ticks past the horizon: republish
                                   and sweeps only, no new demand *)
  tick_ms : float;             (** batching cadence of the open loop *)
  bootstrap_hosts : int;
  services : int;
  providers_per_service : int;
  rate_per_s : float;
  zipf_s : float;
  unknown_fraction : float;    (** demand aimed at never-published names *)
  flash_mult : float;          (** <= 1 disables the flash crowd *)
  flash_focus : int;
  flash_start_ms : float;
  flash_len_ms : float;
  flap_rate_per_s : float;
  storm_at_ms : float;         (** <= 0 disables the republish storm *)
  dir_cfg : Rofl_services.Directory.config;
  proto_cfg : Rofl_proto.Proto.config;
}

val default_params : params

type report = {
  name : string;
  params : params;
  resolves : int;
  hits : int;                  (** positive cache hits *)
  neg_hits : int;
  misses : int;
  hit_ratio : float;           (** (hits + neg_hits) / resolves *)
  ok : int;
  ok_rate : float;             (** oracle-correct sign: providers for live
                                   services, negative for unknown/dead ones *)
  stale : int;
  stale_rate : float;          (** answers containing decayed data *)
  lat_p50_ms : float;          (** over all resolutions; hits are local = 0 *)
  lat_p95_ms : float;
  lat_p99_ms : float;
  miss_p95_ms : float;         (** over owner-walk resolutions only *)
  republishes : int;
  publish_msgs : int;          (** link traversals of publish walks *)
  resolve_msgs : int;          (** link traversals of miss resolutions,
                                   losing α-branch traffic included *)
  resolve_wasted : int;        (** ring hops burned by losing α-branches *)
  resolve_cancels : int;       (** cooperative branch cancellations issued *)
  expired : int;               (** records dropped by TTL sweeps *)
  served_expired : int;        (** must be 0 without the serve-stale knob *)
  records_live : int;
  intents_active : int;
  svc_counters : (string * int) list;  (** the directory's metrics table *)
  proto_ctrl : (string * int) list;    (** proto control messages by category *)
  ctrl_msgs : int;             (** proto + publish + resolve traversals *)
  ctrl_per_s : float;
  peak_queue : int;
  events_executed : int;
  event_fingerprint : int;
  sim_end_ms : float;
  audit : Rofl_doctor.Audit.summary option;
}

val run_graph :
  seed:int ->
  name:string ->
  graph:Rofl_topology.Graph.t ->
  gateways:int array ->
  ?audit:Rofl_doctor.Audit.config ->
  ?shards:int ->
  ?pool:Rofl_util.Pool.t ->
  params ->
  report
(** When [audit] is given, {!Rofl_doctor.Checks.services_checks} rides the
    checkpoint sweeps alongside the proto invariants. *)

val run :
  seed:int ->
  profile:Rofl_topology.Isp.profile ->
  ?audit:Rofl_doctor.Audit.config ->
  ?shards:int ->
  ?pool:Rofl_util.Pool.t ->
  params ->
  report
(** Generate the ISP topology for [profile] (same derivation as the churn
    campaigns) and run on it, gateways = the edge routers. *)

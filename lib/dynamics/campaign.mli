(** Churn lab: asynchronous churn-and-failure campaigns with steady-state
    SLO metrics.

    A campaign replays a {!Rofl_workload.Churn} trace — hosts joining,
    leaving, moving and crashing on a Poisson schedule — through the
    message-driven {!Rofl_proto.Proto} actor engine while an open-loop
    lookup workload runs concurrently, then reports the steady-state
    service-level numbers the paper's one-shot experiments cannot see:
    lookup success rate and latency percentiles, stale-successor window
    durations, time to reconvergence once the trace drains, and
    control-message overhead per category.

    Determinism: a campaign is a pure function of (seed, graph, params,
    events).  Every random stream is derived from the seed by purpose,
    per-event randomness (gateway placement) is keyed by the event itself
    rather than by trace position — so the doctor's shrinker can drop
    events without reshuffling the rest — and nothing is shared across
    campaigns, so grids of campaigns can fan over {!Rofl_util.Pool} with
    byte-identical results at any jobs setting. *)

type params = {
  horizon_ms : float;           (** churn + lookups run for this long *)
  arrival_rate_per_s : float;   (** Poisson session arrival rate *)
  mean_lifetime_s : float;      (** exponential session lifetime *)
  move_fraction : float;        (** departures that relocate *)
  crash_fraction : float;       (** departures that die silently *)
  lookup_rate_per_s : float;    (** open-loop lookup launch rate (0 = none) *)
  lookup_warmup_ms : float;     (** only target sessions at least this old *)
  drain_max_ms : float;         (** post-horizon budget to reconverge *)
  bootstrap_hosts : int;
  (** extra hosts spliced into the ring at time zero (uniformly random
      placement) — the knob that makes million-host campaigns affordable
      without simulating a million joins *)
  proto_cfg : Rofl_proto.Proto.config;
}

val default_params : params
(** 20 s horizon, 1 arrival/s with 10 s mean lifetime (10% moves, 20%
    crashes), 10 lookups/s after a 1 s warmup, 30 s drain budget, protocol
    defaults. *)

type report = {
  name : string;
  params : params;
  joins : int;                (** joins completed by the protocol *)
  leaves : int;
  moves : int;
  crashes : int;
  join_failures : int;
  lookups : int;              (** lookups resolved (success or failure) *)
  lookups_ok : int;
  success_rate : float;       (** 1.0 when no lookup was launched *)
  lat_p50_ms : float;         (** percentiles over successful lookups *)
  lat_p95_ms : float;
  lat_p99_ms : float;
  stale_count : int;          (** repaired stale-successor windows *)
  stale_p95_ms : float;
  stale_unrepaired : int;     (** windows still open at campaign end *)
  reconverged : bool;         (** ring converged within the drain budget *)
  reconverge_ms : float;      (** last churn event -> convergence; NaN if not *)
  failovers : int;
  rpc_timeouts : int;
  wasted_hops : int;
  (** link traversals charged by losing α-branches and superseded attempts —
      the duplicate-work price of parallel lookups (0 at α = 1) *)
  cancellations : int;        (** cooperative branch cancellations issued *)
  auto_state : (float * float * int) option;
  (** final self-tuning state when [stabilize_auto]: median network-size
      estimate N̂, stabilisation period multiplier, successor-list cap *)
  ctrl_msgs : (string * int) list; (** per-category link traversals, sorted *)
  total_msgs : int;
  msgs_per_event : float;     (** total messages per churn-trace event *)
  peak_queue : int;           (** event-queue high-water mark, summed over shards *)
  events_executed : int;      (** events executed, summed over shards *)
  event_fingerprint : int;
  (** order-insensitive digest of every executed event's (time, rail, seq)
      key — byte-identical across shard counts for the same campaign, the
      quantity the shard-determinism tests compare *)
  sim_end_ms : float;
  audit : Rofl_doctor.Audit.summary option;
  (** checkpoint-audit results when an [?audit] config was supplied *)
  join_rejects : int;
  (** join claims turned away by challenge/response verification *)
  promo_rejects : int;
  (** failover candidates that failed promotion verification *)
  tainted : int;
  (** forged identifiers resident at campaign end (only possible with
      [verify_joins] off) *)
  sybils : int;
  (** mined sybil identifiers an {!Rofl_doctor.Artifact.Eclipse} fault
      joined *)
  grind_draws : int;
  (** keypair draws the attacker paid to mine them — the honest cost of
      aiming self-certifying identifiers at an arc *)
  victim_capture : float;
  (** pre-crash victim-arc sweep: fraction of {!victim_sweep_len} targets
      sampled uniformly from the arc the victim's label owns that resolve
      to a sybil (-1 when the campaign had no eclipse fault) *)
  victim_repair : float;
  (** post-drain sweep over the same targets: fraction resolving to the
      true ring owner of the final membership (-1 without an eclipse
      fault) *)
}

val victim_sweep_len : int
(** Targets per victim-arc SLO sweep (64). *)

val churn_events : seed:int -> params -> Rofl_doctor.Artifact.event list
(** The churn trace a campaign at this seed replays, as doctor events —
    exactly what {!run_graph} feeds {!run_events}, exposed so the doctor
    can audit, shrink and persist it. *)

val run_events :
  seed:int ->
  name:string ->
  graph:Rofl_topology.Graph.t ->
  gateways:int array ->
  ?audit:Rofl_doctor.Audit.config ->
  ?shards:int ->
  ?pool:Rofl_util.Pool.t ->
  ?groups:int array ->
  ?behaviours:Rofl_proto.Proto.behaviour array ->
  params ->
  Rofl_doctor.Artifact.event list ->
  report
(** Run a campaign over an explicit event list — churn plus injected faults
    ({!Rofl_doctor.Artifact.fault}).  With [?audit], a checkpoint auditor
    observes the run (purely — every table stays byte-identical) and its
    summary lands in the report.  The same (seed, graph, params, events)
    always produces the same report, whatever events were dropped: this is
    the replay primitive behind [rofl_sim doctor --replay].

    [?shards] partitions the routers across that many event engines under a
    conservative-window coordinator, and [?pool] runs the shard windows on
    pool domains; both are execution configuration, not campaign identity —
    the report (SLO tables, audit summary, event fingerprint) is
    byte-identical at any shards/pool setting.

    [?groups] keys the per-PoP quota defenses (one diversity-group index
    per router); [?behaviours] assigns initial per-router conduct.  Attack
    faults in the event list ({!Rofl_doctor.Artifact.Eclipse} /
    [Poison] / [Forge]) execute as global events with all randomness
    content-keyed on (seed, purpose), so adversarial campaigns keep the
    byte-identical-at-any-shards property. *)

val run_graph :
  seed:int ->
  name:string ->
  graph:Rofl_topology.Graph.t ->
  gateways:int array ->
  ?audit:Rofl_doctor.Audit.config ->
  ?shards:int ->
  ?pool:Rofl_util.Pool.t ->
  ?groups:int array ->
  ?behaviours:Rofl_proto.Proto.behaviour array ->
  params ->
  report
(** Run one campaign on an arbitrary topology; joins, moves and lookup
    origins are placed on [gateways] (must be non-empty).  Equivalent to
    {!run_events} over {!churn_events}. *)

val run :
  seed:int ->
  profile:Rofl_topology.Isp.profile ->
  ?audit:Rofl_doctor.Audit.config ->
  ?shards:int ->
  ?pool:Rofl_util.Pool.t ->
  ?events:Rofl_doctor.Artifact.event list ->
  params ->
  report
(** Campaign on a generated ISP topology (same derivation as the experiment
    engine), with hosts attached at its access routers; the topology's
    router→PoP map keys the quota defenses.  [?events] overrides the
    churn trace (e.g. churn plus attack faults); default
    {!churn_events}. *)

val params_to_strings : params -> (string * string) list
(** Flatten params (including the protocol config) to named scalars for a
    repro artifact; floats are hex ([%h]) so the round trip is
    bit-identical. *)

val params_of_strings : (string * string) list -> (params, string) result
(** Rebuild params from artifact lines over {!default_params}; unknown keys
    and malformed scalars are errors. *)

(** Churn lab: asynchronous churn-and-failure campaigns with steady-state
    SLO metrics.

    A campaign replays a {!Rofl_workload.Churn} trace — hosts joining,
    leaving, moving and crashing on a Poisson schedule — through the
    message-driven {!Rofl_proto.Proto} actor engine while an open-loop
    lookup workload runs concurrently, then reports the steady-state
    service-level numbers the paper's one-shot experiments cannot see:
    lookup success rate and latency percentiles, stale-successor window
    durations, time to reconvergence once the trace drains, and
    control-message overhead per category.

    Determinism: a campaign is a pure function of (seed, graph, params).
    Every random stream is derived from the seed by purpose, all draws
    happen either in the planning phase (trace order) or inside engine
    events (engine order), and nothing is shared across campaigns — so grids
    of campaigns can fan over {!Rofl_util.Pool} with byte-identical results
    at any jobs setting. *)

type params = {
  horizon_ms : float;           (** churn + lookups run for this long *)
  arrival_rate_per_s : float;   (** Poisson session arrival rate *)
  mean_lifetime_s : float;      (** exponential session lifetime *)
  move_fraction : float;        (** departures that relocate *)
  crash_fraction : float;       (** departures that die silently *)
  lookup_rate_per_s : float;    (** open-loop lookup launch rate (0 = none) *)
  lookup_warmup_ms : float;     (** only target sessions at least this old *)
  drain_max_ms : float;         (** post-horizon budget to reconverge *)
  proto_cfg : Rofl_proto.Proto.config;
}

val default_params : params
(** 20 s horizon, 1 arrival/s with 10 s mean lifetime (10% moves, 20%
    crashes), 10 lookups/s after a 1 s warmup, 30 s drain budget, protocol
    defaults. *)

type report = {
  name : string;
  params : params;
  joins : int;                (** joins completed by the protocol *)
  leaves : int;
  moves : int;
  crashes : int;
  join_failures : int;
  lookups : int;              (** lookups resolved (success or failure) *)
  lookups_ok : int;
  success_rate : float;       (** 1.0 when no lookup was launched *)
  lat_p50_ms : float;         (** percentiles over successful lookups *)
  lat_p95_ms : float;
  lat_p99_ms : float;
  stale_count : int;          (** repaired stale-successor windows *)
  stale_p95_ms : float;
  stale_unrepaired : int;     (** windows still open at campaign end *)
  reconverged : bool;         (** ring converged within the drain budget *)
  reconverge_ms : float;      (** last churn event -> convergence; NaN if not *)
  failovers : int;
  rpc_timeouts : int;
  ctrl_msgs : (string * int) list; (** per-category link traversals, sorted *)
  total_msgs : int;
  msgs_per_event : float;     (** total messages per churn-trace event *)
  peak_queue : int;           (** event-queue high-water mark *)
  sim_end_ms : float;
}

val run_graph :
  seed:int ->
  name:string ->
  graph:Rofl_topology.Graph.t ->
  gateways:int array ->
  params ->
  report
(** Run one campaign on an arbitrary topology; joins, moves and lookup
    origins are placed on [gateways] (must be non-empty). *)

val run : seed:int -> profile:Rofl_topology.Isp.profile -> params -> report
(** Campaign on a generated ISP topology (same derivation as the experiment
    engine), with hosts attached at its access routers. *)

module Id = Rofl_idspace.Id
module Prng = Rofl_util.Prng
module Stats = Rofl_util.Stats
module Graph = Rofl_topology.Graph
module Isp = Rofl_topology.Isp
module Shard = Rofl_netsim.Shard
module Metrics = Rofl_netsim.Metrics
module Proto = Rofl_proto.Proto
module Services = Rofl_workload.Services
module Directory = Rofl_services.Directory
module Provider_store = Rofl_services.Provider_store
module Audit = Rofl_doctor.Audit
module Checks = Rofl_doctor.Checks

(* The service-discovery campaign: a directory over a running actor network,
   Zipf-skewed open-loop resolution demand with a flash crowd, provider
   flaps feeding the stale-answer oracle, periodic republish (optionally
   with a storm), TTL sweeps, and SLO accounting.

   Determinism discipline (the same rules as the churn campaign):

   - every random stream derives from (seed, purpose); per-event randomness
     (gateways, unknown names) is keyed by the event's content, never its
     trace position;

   - every directory mutation and every resolution batch runs inside a
     global event — all shards parked at a K-independent sync point — so
     one unsharded directory serves any [--shards]/[--jobs] setting;

   - demand is quantised to the tick cadence: events in ((k-1)·tick, k·tick]
     execute at the k·tick boundary, resolutions batched through one fused
     [Proto.lookup_owner_batch] walk per tick.  Latency is the walk's
     priced physical latency plus the shortest-path response leg; cache
     hits answer locally at zero latency.

   The between-tick time belongs to the protocol: the stabilizer keeps
   probing throughout, so resolution traffic shares the network with live
   ring maintenance, sharded and parallel like any proto campaign. *)

type params = {
  horizon_ms : float;
  drain_ms : float;            (* post-horizon ticks: republish/sweep only *)
  tick_ms : float;             (* batching cadence of the open loop *)
  bootstrap_hosts : int;
  services : int;
  providers_per_service : int;
  rate_per_s : float;
  zipf_s : float;
  unknown_fraction : float;    (* demand aimed at never-published names *)
  flash_mult : float;          (* <= 1 disables the flash crowd *)
  flash_focus : int;
  flash_start_ms : float;
  flash_len_ms : float;
  flap_rate_per_s : float;
  storm_at_ms : float;         (* <= 0 disables the republish storm *)
  dir_cfg : Directory.config;
  proto_cfg : Proto.config;
}

let default_params =
  {
    horizon_ms = 20_000.0;
    drain_ms = 2_000.0;
    tick_ms = 100.0;
    bootstrap_hosts = 500;
    services = 200;
    providers_per_service = 2;
    rate_per_s = 200.0;
    zipf_s = 0.9;
    unknown_fraction = 0.05;
    flash_mult = 8.0;
    flash_focus = 2;
    flash_start_ms = 8_000.0;
    flash_len_ms = 4_000.0;
    flap_rate_per_s = 1.0;
    storm_at_ms = 0.0;
    dir_cfg = Directory.default_config;
    proto_cfg = Proto.default_config;
  }

type report = {
  name : string;
  params : params;
  resolves : int;
  hits : int;                  (* positive cache hits *)
  neg_hits : int;
  misses : int;
  hit_ratio : float;           (* (hits + neg_hits) / resolves *)
  ok : int;
  ok_rate : float;             (* answers with the oracle-correct sign *)
  stale : int;
  stale_rate : float;          (* answers containing decayed data *)
  lat_p50_ms : float;          (* over all resolutions (hits are local = 0) *)
  lat_p95_ms : float;
  lat_p99_ms : float;
  miss_p95_ms : float;         (* over owner-walk resolutions only *)
  republishes : int;
  publish_msgs : int;          (* link traversals of publish walks *)
  resolve_msgs : int;          (* link traversals of miss resolutions *)
  resolve_wasted : int;        (* ring hops burned by losing α-branches *)
  resolve_cancels : int;       (* cooperative branch cancellations *)
  expired : int;               (* records dropped by TTL sweeps *)
  served_expired : int;        (* must be 0 without the fault knob *)
  records_live : int;          (* placed records at the end *)
  intents_active : int;
  svc_counters : (string * int) list;  (* the directory's Metrics table *)
  proto_ctrl : (string * int) list;    (* proto per-category control messages *)
  ctrl_msgs : int;             (* proto messages + publish/resolve traversals *)
  ctrl_per_s : float;
  peak_queue : int;
  events_executed : int;
  event_fingerprint : int;
  sim_end_ms : float;
  audit : Audit.summary option;
}

let stream seed purpose = Prng.create (Hashtbl.hash (seed, purpose, 0x0c4a7))

(* Content-keyed per-event randomness, as in the churn campaign: dropping an
   event from a trace must not reshuffle every later draw. *)
let keyed seed purpose k = Prng.create (Hashtbl.hash (seed, purpose, k, 0x0c4a7))

let service_id ~seed rank = Id.random (keyed seed "svc-id" rank)
let provider_id ~seed rank j = Id.random (keyed seed "svc-provider" (rank, j))

let percentile_or xs p ~default =
  match xs with [] -> default | _ -> Stats.percentile xs p

let run_graph ~seed ~name ~graph ~gateways ?audit ?(shards = 1) ?pool (p : params) =
  if gateways = [||] then invalid_arg "Services_campaign.run_graph: no gateway routers";
  if p.tick_ms <= 0.0 then invalid_arg "Services_campaign.run_graph: tick must be positive";
  let proto =
    Proto.create ~rng:(stream seed "proto") ~cfg:p.proto_cfg ~shards ?pool
      ~bootstrap_hosts:p.bootstrap_hosts graph
  in
  let coord = Proto.coordinator proto in
  (* Little's-law load hint: the steady record population is the intent set,
     and the resolve batch width is rate x tick. *)
  let intents = p.services * p.providers_per_service in
  let batch_hint =
    16 + int_of_float (ceil (p.rate_per_s *. p.tick_ms /. 1000.0))
  in
  let dir =
    Directory.create ~proto ~routers:(Graph.n graph) ~hint:(max intents batch_hint)
      p.dir_cfg
  in
  (* The publication set: services x providers, each provider's origin a
     content-keyed gateway (where its host attaches to the network). *)
  for rank = 1 to p.services do
    let service = service_id ~seed rank in
    for j = 0 to p.providers_per_service - 1 do
      let origin_rng = keyed seed "svc-origin" (rank, j) in
      ignore
        (Directory.register dir ~service ~provider:(provider_id ~seed rank j)
           ~origin:gateways.(Prng.int origin_rng (Array.length gateways)))
    done
  done;
  (* Demand trace, bucketed by tick. *)
  let flash =
    if p.flash_mult > 1.0 && p.flash_len_ms > 0.0 then
      Some
        {
          Services.flash_start_ms = p.flash_start_ms;
          flash_len_ms = p.flash_len_ms;
          flash_mult = p.flash_mult;
          flash_focus = min p.flash_focus p.services;
        }
    else None
  in
  let events =
    Services.generate (stream seed "svc-demand") ~horizon_ms:p.horizon_ms
      ~services:p.services ~providers_per_service:p.providers_per_service
      ~rate_per_s:p.rate_per_s ~zipf_s:p.zipf_s
      ~unknown_fraction:p.unknown_fraction ?flash
      ~flap_rate_per_s:p.flap_rate_per_s ()
  in
  let ticks_horizon = int_of_float (ceil (p.horizon_ms /. p.tick_ms)) in
  let ticks_total =
    ticks_horizon + int_of_float (ceil (p.drain_ms /. p.tick_ms))
  in
  let bucket_of at =
    (* events in ((k-1)·tick, k·tick] run at boundary k; k is 1-based *)
    min ticks_horizon (max 1 (int_of_float (ceil (at /. p.tick_ms))))
  in
  let resolves_b = Array.make (ticks_total + 1) [] in
  let flaps_b = Array.make (ticks_total + 1) [] in
  List.iter
    (fun ev ->
      match ev with
      | Services.Resolve { at_ms; rank; seq } ->
        let b = bucket_of at_ms in
        resolves_b.(b) <- (rank, seq) :: resolves_b.(b)
      | Services.Flap { at_ms; service; provider; seq = _ } ->
        let b = bucket_of at_ms in
        flaps_b.(b) <- (service, provider) :: flaps_b.(b))
    events;
  (* restore trace order within each bucket *)
  Array.iteri (fun i l -> resolves_b.(i) <- List.rev l) resolves_b;
  Array.iteri (fun i l -> flaps_b.(i) <- List.rev l) flaps_b;
  (* SLO accumulators — only touched inside global events. *)
  let resolves = ref 0
  and hits = ref 0
  and neg_hits = ref 0
  and misses = ref 0
  and ok = ref 0
  and stale = ref 0 in
  let lats = ref [] and miss_lats = ref [] in
  (* reusable batch input registers *)
  let bcap = ref 16 in
  let bfrom = ref (Array.make !bcap 0) in
  let bsvc = ref (Array.make !bcap Id.zero) in
  let storm_done = ref (p.storm_at_ms <= 0.0) in
  for k = 1 to ticks_total do
    let time_ms = float_of_int k *. p.tick_ms in
    Shard.at_global coord ~time_ms (fun () ->
        let now = Shard.now coord in
        (* provider flaps first: the tick's resolutions see the new truth *)
        List.iter
          (fun (rank, j) ->
            let service = service_id ~seed rank in
            let provider = provider_id ~seed rank j in
            if Directory.provider_active dir ~service ~provider then
              ignore (Directory.unregister dir ~service ~provider)
            else begin
              let origin_rng = keyed seed "svc-origin" (rank, j) in
              ignore
                (Directory.register dir ~service ~provider
                   ~origin:gateways.(Prng.int origin_rng (Array.length gateways)))
            end)
          flaps_b.(k);
        if (not !storm_done) && time_ms >= p.storm_at_ms then begin
          storm_done := true;
          ignore (Directory.republish_all dir ~now)
        end
        else ignore (Directory.republish_due dir ~now);
        ignore (Directory.sweep dir ~now);
        (match resolves_b.(k) with
         | [] -> ()
         | batch ->
           let n = List.length batch in
           if n > !bcap then begin
             bcap := max n (2 * !bcap);
             bfrom := Array.make !bcap 0;
             bsvc := Array.make !bcap Id.zero
           end;
           let from = !bfrom and svcs = !bsvc in
           List.iteri
             (fun i (rank, seq) ->
               from.(i) <- gateways.(Prng.int (keyed seed "svc-gw" seq)
                                        (Array.length gateways));
               svcs.(i) <-
                 (if rank = 0 then
                    (* Unknown names repeat (a small pool, picked per event
                       by content) so negative cache entries can be re-hit;
                       a fresh id per query would make negative caching
                       unmeasurable. *)
                    let pool = max 1 (p.services / 8) in
                    Id.random
                      (keyed seed "svc-unknown"
                         (Hashtbl.hash (seed, "svc-unknown-pick", seq) mod pool))
                  else service_id ~seed rank))
             batch;
           Directory.resolve_batch dir ~now ~n ~from ~services:svcs;
           for i = 0 to n - 1 do
             incr resolves;
             let lat = Directory.res_latency_ms dir i in
             lats := lat :: !lats;
             if Directory.res_hit dir i then
               if Directory.res_positive dir i then incr hits else incr neg_hits
             else begin
               incr misses;
               miss_lats := lat :: !miss_lats
             end;
             if Directory.res_ok dir i then incr ok;
             if Directory.res_stale dir i then incr stale
           done))
  done;
  let auditor =
    Option.map
      (fun cfg ->
        let extra at_ms = Checks.services_checks ~at_ms dir in
        let a = Audit.create ~extra cfg proto in
        Audit.install a;
        a)
      audit
  in
  Proto.start_stabilizer proto;
  Shard.run_until coord (float_of_int ticks_total *. p.tick_ms);
  Proto.stop_stabilizer proto;
  let audit_summary =
    Option.map
      (fun a ->
        Audit.detach a;
        Audit.summary a)
      auditor
  in
  let sim_end = Shard.now coord in
  let m = Directory.metrics dir in
  let publish_msgs = Metrics.get m "svc-publish-msg" in
  let resolve_msgs = Metrics.get m "svc-resolve-msg" in
  let proto_msgs = (Proto.stats proto).Proto.messages in
  let ctrl_msgs = proto_msgs + publish_msgs + resolve_msgs in
  let nresolves = !resolves in
  let lats = List.rev !lats and miss_lats = List.rev !miss_lats in
  let frac a b = if b = 0 then 1.0 else float_of_int a /. float_of_int b in
  {
    name;
    params = p;
    resolves = nresolves;
    hits = !hits;
    neg_hits = !neg_hits;
    misses = !misses;
    hit_ratio = frac (!hits + !neg_hits) nresolves;
    ok = !ok;
    ok_rate = frac !ok nresolves;
    stale = !stale;
    stale_rate = (if nresolves = 0 then 0.0 else frac !stale nresolves);
    lat_p50_ms = percentile_or lats 50.0 ~default:0.0;
    lat_p95_ms = percentile_or lats 95.0 ~default:0.0;
    lat_p99_ms = percentile_or lats 99.0 ~default:0.0;
    miss_p95_ms = percentile_or miss_lats 95.0 ~default:0.0;
    republishes = Metrics.get m "svc-republish";
    publish_msgs;
    resolve_msgs;
    resolve_wasted = Directory.resolve_wasted_hops dir;
    resolve_cancels = Directory.resolve_cancellations dir;
    expired = Metrics.get m "svc-expired";
    served_expired = Directory.served_expired_total dir;
    records_live = Provider_store.live (Directory.store dir);
    intents_active = Directory.intents_active dir;
    svc_counters = Metrics.categories m;
    proto_ctrl = Metrics.categories (Proto.metrics proto);
    ctrl_msgs;
    ctrl_per_s = (if sim_end <= 0.0 then 0.0 else float_of_int ctrl_msgs /. (sim_end /. 1000.0));
    peak_queue = Shard.peak_global coord;
    events_executed = Shard.executed_total coord;
    event_fingerprint = Shard.fingerprint coord;
    sim_end_ms = sim_end;
    audit = audit_summary;
  }

let run ~seed ~profile ?audit ?shards ?pool (p : params) =
  (* Same topology derivation as the churn campaigns: gateways are the ISP's
     edge routers, where hosts (and so providers and resolvers) attach. *)
  let rng = Prng.create (seed + Hashtbl.hash profile.Isp.profile_name) in
  let isp = Isp.generate rng profile in
  let gateways = Array.of_list (Isp.edge_routers isp) in
  run_graph ~seed ~name:profile.Isp.profile_name ~graph:isp.Isp.graph ~gateways
    ?audit ?shards ?pool p

(** Batched interdomain data plane: AS-granularity multi-lookup forwarding.

    The `Per_move` walk of {!Rofl_inter.Route} advanced one AS-level move
    per pass over struct-of-arrays registers.  Candidate choice and charge
    accounting go through the exact substrate functions exported by
    [Route], so per-lookup verdicts, hop counters, and charges are
    byte-identical to [route_from] from the same starting state.

    Read-only on AS state: dead cache entries the sequential walk prunes
    eagerly are emulated per-lookup and deferred to {!apply_purges}.
    AS moves materialise paths to charge per-AS load, so this layer makes
    no zero-allocation claim (that discipline lives in {!Intra}).

    In [Bloom_filters] peering mode every cache probe and peer check draws
    from the shared RNG; batching would reorder the stream, so {!run}
    transparently falls back to sequential [route_from] calls — same
    results, same draws. *)

type t

val create : Rofl_inter.Net.t -> t

val run :
  t -> srcs:Rofl_inter.Net.host array -> dsts:Rofl_idspace.Id.t array -> unit
(** Route lookup [i] from [srcs.(i)]'s home AS toward [dsts.(i)], all
    lookups advanced one move per pass.  Results live in the accessors
    until the next run. *)

val run_sequential :
  t -> srcs:Rofl_inter.Net.host array -> dsts:Rofl_idspace.Id.t array -> unit
(** Each lookup driven to completion before the next starts — the
    reference side of the batched-vs-sequential equivalence tests. *)

val batch_size : t -> int

val passes : t -> int
(** Passes the last batched {!run} needed; 0 after sequential runs. *)

val delivered : t -> int -> bool
val as_hops : t -> int -> int
val pointer_hops : t -> int -> int
val cache_hops : t -> int -> int
val peer_crossings : t -> int -> int
val backtracks : t -> int -> int
val max_level_breadth : t -> int -> int
val delivered_count : t -> int

val total_as_hops : t -> int

val purge_count : t -> int
(** Deferred dead-cache-entry purges accumulated since {!apply_purges}. *)

val apply_purges : t -> unit
(** Evict the dead entries from the per-AS caches — what the sequential
    walk does eagerly inside its cache probe, deferred here as
    control-plane work. *)

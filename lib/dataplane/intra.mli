(** Batched intradomain data plane: allocation-free multi-lookup forwarding.

    A struct-of-arrays batch of in-flight greedy lookups advanced one
    walk-iteration per pass over {!Rofl_intra.Network} state — the exact
    per-lookup state machine of [Network.lookup] (candidate ranking,
    persistent horizon, committed source routes, stale-pointer NACK
    restarts, step guard), flattened into parallel int/float registers so a
    pass touches the batch with no per-hop closures, lists, or tuples.

    The hot loop allocates nothing in steady state (verified by the bench
    [dataplane] target's words/lookup gate).  Two cold paths may allocate
    and are charged identically to the sequential walk: the SPF fallback
    when a cached route does not start at the current router, and the
    teardown charge on a stale-pointer NACK.

    The engine is read-only on router state.  Sequential lookups prune
    stale pointers eagerly; here each lookup emulates its own prunes
    through a bounded exclusion table (so every verdict, hop count, and
    charge is byte-identical to the sequential walk from the same starting
    state) and the prunes are queued for the control plane to apply with
    {!apply_nacks} after the batch.  Because in-batch lookups never mutate
    shared state, batched and one-at-a-time execution of the same batch are
    identical by construction — pinned by QCheck in [test_dataplane]. *)

type t

val create :
  ?category:string ->
  ?use_cache:bool ->
  ?step_limit:int ->
  Rofl_intra.Network.t ->
  t
(** An engine bound to a network.  [category] (default [Msg.data]) is the
    metrics category hops are charged to — interned once so per-hop charging
    is allocation-free.  [use_cache]/[step_limit] mirror the corresponding
    [Network.lookup] knobs; by default the step limit is recomputed from
    ring occupancy at each {!run}, exactly as the sequential driver does.
    Registers grow geometrically and are reused across batches. *)

val run : t -> from:int array -> targets:Rofl_idspace.Id.t array -> unit
(** Load a batch (lookup [i] starts at router [from.(i)] toward
    [targets.(i)]) and drive every lookup to a verdict, one walk-iteration
    per lookup per pass.  Results are read back through the accessors
    below and stay valid until the next [run]/[run_sequential]. *)

val run_sequential :
  t -> from:int array -> targets:Rofl_idspace.Id.t array -> unit
(** Same batch, but each lookup is driven to completion before the next
    starts — the per-lookup driver the bench baselines against, and the
    reference side of the batched-vs-sequential equivalence tests. *)

val batch_size : t -> int

val passes : t -> int
(** Passes the last {!run} needed (the longest walk's iteration count);
    0 after {!run_sequential}. *)

val status : t -> int -> Rofl_intra.Network.lookup_status
(** Verdict of lookup [i] (allocates the constructor; test/report path). *)

val msgs : t -> int -> int
(** Link traversals charged to lookup [i]. *)

val latency_ms : t -> int -> float

val restarts : t -> int -> int
(** Stale-pointer restarts lookup [i] consumed. *)

val delivered_count : t -> int

val total_hops : t -> int
(** Sum of {!msgs} over the batch. *)

val nack_count : t -> int
(** Deferred stale-pointer prunes accumulated since the last
    {!apply_nacks}. *)

val apply_nacks : t -> unit
(** Apply the deferred prunes to router state (drop the owner's pointers to
    each chased identifier, evict it from the owner's and detector's
    caches) — what the sequential walk does eagerly mid-lookup, batched
    here as control-plane work.  Clears the worklist. *)

(* Batched data-plane front-end over the actor network's pointer state: a
   register file for [Proto.lookup_owner_batch_into] that persists across
   rounds, so a steady-state caller (the service-discovery resolver, the
   bench hot loop) stages lookups, runs the fused walk, and reads verdicts
   without allocating a fresh batch per round.  Registers grow by doubling
   and never shrink; [run] itself allocates nothing beyond the walk's own
   Dijkstra pricing. *)

module Id = Rofl_idspace.Id
module Proto = Rofl_proto.Proto

type t = {
  proto : Proto.t;
  mutable cap : int;
  mutable n : int;
  mutable from : int array;
  mutable targets : Id.t array;
  mutable found : bool array;
  mutable owner : Id.t array;
  mutable owner_router : int array;
  mutable ring_hops : int array;
  mutable link_hops : int array;
  mutable latency_ms : float array;
}

let create ?(hint = 16) proto =
  let cap = max 1 hint in
  {
    proto;
    cap;
    n = 0;
    from = Array.make cap 0;
    targets = Array.make cap Id.zero;
    found = Array.make cap false;
    owner = Array.make cap Id.zero;
    owner_router = Array.make cap (-1);
    ring_hops = Array.make cap 0;
    link_hops = Array.make cap 0;
    latency_ms = Array.make cap 0.0;
  }

let proto t = t.proto

let grow t cap =
  let cap = max cap (2 * t.cap) in
  let copy a dummy =
    let b = Array.make cap dummy in
    Array.blit a 0 b 0 t.cap;
    b
  in
  t.from <- copy t.from 0;
  t.targets <- copy t.targets Id.zero;
  t.found <- copy t.found false;
  t.owner <- copy t.owner Id.zero;
  t.owner_router <- copy t.owner_router (-1);
  t.ring_hops <- copy t.ring_hops 0;
  t.link_hops <- copy t.link_hops 0;
  t.latency_ms <- copy t.latency_ms 0.0;
  t.cap <- cap

let clear t = t.n <- 0

let stage t ~from ~target =
  if t.n >= t.cap then grow t (t.n + 1);
  let i = t.n in
  t.from.(i) <- from;
  t.targets.(i) <- target;
  t.n <- i + 1;
  i

let length t = t.n

let run t =
  Proto.lookup_owner_batch_into t.proto ~n:t.n ~from:t.from ~targets:t.targets
    ~found:t.found ~owner:t.owner ~owner_router:t.owner_router
    ~ring_hops:t.ring_hops ~link_hops:t.link_hops ~latency_ms:t.latency_ms

let check t i name =
  if i < 0 || i >= t.n then invalid_arg ("Proto_batch." ^ name ^ ": index out of batch")

let resolved t i =
  check t i "resolved";
  t.found.(i)

let owner_id t i =
  check t i "owner_id";
  if not t.found.(i) then invalid_arg "Proto_batch.owner_id: unresolved lookup";
  t.owner.(i)

let owner_router t i =
  check t i "owner_router";
  t.owner_router.(i)

let ring_hops t i =
  check t i "ring_hops";
  t.ring_hops.(i)

let link_hops t i =
  check t i "link_hops";
  t.link_hops.(i)

let latency_ms t i =
  check t i "latency_ms";
  t.latency_ms.(i)

module Id = Rofl_idspace.Id
module Ring = Rofl_idspace.Ring
module Vnode = Rofl_core.Vnode
module Pointer = Rofl_core.Pointer
module Pointer_cache = Rofl_core.Pointer_cache
module Sourceroute = Rofl_core.Sourceroute
module Msg = Rofl_core.Msg
module Graph = Rofl_topology.Graph
module Linkstate = Rofl_linkstate.Linkstate
module Metrics = Rofl_netsim.Metrics
module Charge = Rofl_routing.Charge
module Network = Rofl_intra.Network

(* Batched intradomain forwarding: the exact state machine of
   {!Rofl_routing.Walk} over {!Rofl_intra.Network}'s lookup substrate,
   flattened into per-lookup registers living in parallel arrays so a whole
   batch advances one walk-iteration per pass.  One [step] call is one
   iteration of [Walk.Make(S).run]'s [loop] (including the [advance] the
   iteration performs, which is where the guard counts), so driving a single
   lookup to completion replays the sequential walk transition-for-
   transition.

   The engine never mutates router state: the stale-pointer NACK that
   [Network.lookup] applies eagerly (pruning the owner's pointers and two
   caches) is emulated per-lookup through a bounded exclusion table and
   emitted into a deferred worklist ([apply_nacks]) for the control plane.
   Charges (category counters, per-router load, teardown paths) are applied
   exactly as the sequential walk applies them; they are commutative
   counters, so batch interleaving cannot change totals. *)

(* Verdict register encoding. *)
let running = -1
let v_delivered = 0
let v_predecessor = 1
let v_stuck = 2

(* Exclusion kinds: a NACK prunes pointers *and* cache at the owner, but
   only the cache at the router that detected the staleness. *)
let ex_full = 1
let ex_cache = 0

let restart_limit = 4 (* must match Lookup_substrate.restart_limit *)

type t = {
  net : Network.t;
  counter : int ref; (* interned metrics cell for [category] *)
  use_cache : bool;
  step_limit_override : int option;
  route_cap : int; (* per-lookup route-segment stride; SPF paths are simple *)
  excl_cap : int; (* 2 exclusion entries per restart *)
  dummy_vn : Vnode.t;
  mutable step_limit : int;
  mutable cap : int;
  mutable n : int;
  (* per-lookup registers (struct-of-arrays, indexed by lookup) *)
  mutable target : Id.t array;
  mutable pos : int array;
  mutable best : Id.t array; (* committed horizon; valid iff best_valid=1 *)
  mutable best_valid : int array;
  mutable commit_owner : int array; (* router that issued the pointer; -1 none *)
  mutable commit_chased : Id.t array;
  mutable restarts : int array;
  mutable guard : int array;
  mutable msgs : int array;
  mutable latency : float array;
  mutable verdict : int array;
  mutable verdict_vn : Vnode.t array;
  (* committed-route tails, flattened at stride [route_cap] *)
  mutable route_buf : int array;
  mutable route_pos : int array;
  mutable route_len : int array;
  (* per-lookup NACK-prune emulation, flattened at stride [excl_cap] *)
  mutable excl_router : int array;
  mutable excl_kind : int array;
  mutable excl_id : Id.t array;
  mutable excl_n : int array;
  (* deferred control-plane worklist (grows on demand; stale events are the
     cold path) *)
  mutable nack_owner : int array;
  mutable nack_cur : int array;
  mutable nack_chased : Id.t array;
  mutable nack_n : int;
  mutable remaining : int;
  mutable passes : int;
  (* candidate-selection scratch: one register set reused per [step] *)
  mutable sel_some : bool;
  mutable sel_local : bool;
  mutable sel_vn : Vnode.t;
  mutable sel_ptr : Pointer.t;
  mutable sel_id : Id.t;
}

let create ?(category = Msg.data) ?(use_cache = true) ?step_limit net =
  let dummy_vn = net.Network.routers.(0).Network.default_vnode in
  let dummy_ptr =
    Pointer.make Pointer.Cached ~dst:Id.zero ~dst_router:0
      ~route:(Sourceroute.singleton 0)
  in
  {
    net;
    counter = Metrics.handle net.Network.metrics category;
    use_cache;
    step_limit_override = step_limit;
    route_cap = Graph.n net.Network.graph;
    excl_cap = 2 * restart_limit;
    dummy_vn;
    step_limit = 0;
    cap = 0;
    n = 0;
    target = [||];
    pos = [||];
    best = [||];
    best_valid = [||];
    commit_owner = [||];
    commit_chased = [||];
    restarts = [||];
    guard = [||];
    msgs = [||];
    latency = [||];
    verdict = [||];
    verdict_vn = [||];
    route_buf = [||];
    route_pos = [||];
    route_len = [||];
    excl_router = [||];
    excl_kind = [||];
    excl_id = [||];
    excl_n = [||];
    nack_owner = Array.make 8 0;
    nack_cur = Array.make 8 0;
    nack_chased = Array.make 8 Id.zero;
    nack_n = 0;
    remaining = 0;
    passes = 0;
    sel_some = false;
    sel_local = false;
    sel_vn = dummy_vn;
    sel_ptr = dummy_ptr;
    sel_id = Id.zero;
  }

let ensure_capacity t want =
  if want > t.cap then begin
    let cap = max want (max 16 (2 * t.cap)) in
    t.cap <- cap;
    t.target <- Array.make cap Id.zero;
    t.pos <- Array.make cap 0;
    t.best <- Array.make cap Id.zero;
    t.best_valid <- Array.make cap 0;
    t.commit_owner <- Array.make cap (-1);
    t.commit_chased <- Array.make cap Id.zero;
    t.restarts <- Array.make cap 0;
    t.guard <- Array.make cap 0;
    t.msgs <- Array.make cap 0;
    t.latency <- Array.make cap 0.0;
    t.verdict <- Array.make cap running;
    t.verdict_vn <- Array.make cap t.dummy_vn;
    t.route_buf <- Array.make (cap * t.route_cap) 0;
    t.route_pos <- Array.make cap 0;
    t.route_len <- Array.make cap 0;
    t.excl_router <- Array.make (cap * t.excl_cap) 0;
    t.excl_kind <- Array.make (cap * t.excl_cap) 0;
    t.excl_id <- Array.make (cap * t.excl_cap) Id.zero;
    t.excl_n <- Array.make cap 0
  end

(* -- allocation-free helpers (top-level recursion: no closures) ---------- *)

let rec resident_alive_in id = function
  | [] -> false
  | (vn : Vnode.t) :: tl ->
    (vn.Vnode.alive && Id.equal vn.Vnode.id id) || resident_alive_in id tl

(* Is [id] at router [r] covered by one of lookup [i]'s emulated prunes?
   [want_kind] is [ex_full] to match pointer prunes only, [ex_cache] to
   match any entry (every prune clears the cache at its router). *)
let rec excl_scan excl_router excl_kind excl_id base stop want_kind r id k =
  if k >= stop then false
  else if
    excl_router.(base + k) = r
    && (want_kind = ex_cache || excl_kind.(base + k) = ex_full)
    && Id.equal excl_id.(base + k) id
  then true
  else excl_scan excl_router excl_kind excl_id base stop want_kind r id (k + 1)

let excluded t i want_kind r id =
  let stop = t.excl_n.(i) in
  stop > 0
  && excl_scan t.excl_router t.excl_kind t.excl_id (i * t.excl_cap) stop want_kind
       r id 0

(* -- candidate selection (keep-first ranking, Walk.best) ----------------- *)

let consider_local t i (vn : Vnode.t) =
  if (not t.sel_some)
     || Id.closer_clockwise ~target:t.target.(i) vn.Vnode.id t.sel_id
  then begin
    t.sel_some <- true;
    t.sel_local <- true;
    t.sel_vn <- vn;
    t.sel_id <- vn.Vnode.id
  end

let consider_remote t i (p : Pointer.t) =
  if (not t.sel_some)
     || Id.closer_clockwise ~target:t.target.(i) p.Pointer.dst t.sel_id
  then begin
    t.sel_some <- true;
    t.sel_local <- false;
    t.sel_ptr <- p;
    t.sel_id <- p.Pointer.dst
  end

let rec scan_succs t i cur healthy = function
  | [] -> ()
  | (p : Pointer.t) :: tl ->
    if
      p.Pointer.dst_router <> cur
      && (healthy || Sourceroute.is_valid t.net.Network.ls p.Pointer.route)
      && not (excluded t i ex_full cur p.Pointer.dst)
    then consider_remote t i p;
    scan_succs t i cur healthy tl

let rec scan_residents t i cur healthy = function
  | [] -> ()
  | (vn : Vnode.t) :: tl ->
    if vn.Vnode.alive then begin
      let routable =
        match vn.Vnode.host_class with
        | Vnode.Stable | Vnode.Router_default -> true
        | Vnode.Ephemeral -> Id.equal vn.Vnode.id t.target.(i)
      in
      if routable then consider_local t i vn;
      scan_succs t i cur healthy vn.Vnode.succs
    end;
    scan_residents t i cur healthy tl

(* Predecessor scan over the cache's ring index skipping entries this
   lookup has (virtually) pruned — what [Ring.predecessor] would return had
   the prunes been applied.  Wrap-bounded: after [excl_cap] skips, or once
   back at the start, the pruned index holds nothing eligible. *)
let rec skip_pruned t i cur ring start c steps =
  if Ring.cursor_is_none c then c
  else if not (excluded t i ex_cache cur (Ring.id_at ring c)) then c
  else if steps >= t.excl_cap then Ring.cursor_none
  else begin
    let c' = Ring.cursor_prev ring c in
    if Ring.cursor_equal c' start then Ring.cursor_none
    else skip_pruned t i cur ring start c' (steps + 1)
  end

(* [Pointer_cache.best_match ~cur:target ~target] over the prune-adjusted
   index: exact hit first, else the ring predecessor of the target (the
   [between_incl target _ target] acceptance is the full ring, so any
   predecessor qualifies).  LRU recency is deliberately not touched — the
   data plane is read-only; recency only influences later control-plane
   evictions, never a lookup's own result. *)
let cache_probe t i cur healthy =
  let target = t.target.(i) in
  let ring =
    Pointer_cache.ring_index t.net.Network.routers.(cur).Network.cache
  in
  let c =
    let cf = Ring.cursor_find target ring in
    if (not (Ring.cursor_is_none cf)) && not (excluded t i ex_cache cur target)
    then cf
    else begin
      let start = Ring.cursor_lt target ring in
      skip_pruned t i cur ring start start 0
    end
  in
  if not (Ring.cursor_is_none c) then begin
    let p = Ring.value_at ring c in
    if
      p.Pointer.dst_router <> cur
      && (healthy || Sourceroute.is_valid t.net.Network.ls p.Pointer.route)
    then consider_remote t i p
  end

(* Enumeration order encodes tie precedence exactly as the sequential
   substrate's [candidates]: residents (and their successor pointers)
   first, the cache shortcut last. *)
let select t i cur =
  t.sel_some <- false;
  let healthy = Linkstate.healthy t.net.Network.ls in
  scan_residents t i cur healthy t.net.Network.routers.(cur).Network.residents;
  if t.use_cache then cache_probe t i cur healthy

(* -- verdicts ------------------------------------------------------------ *)

let finish_stuck t i = t.verdict.(i) <- v_stuck

let finish_local t i (vn : Vnode.t) =
  t.verdict_vn.(i) <- vn;
  t.verdict.(i) <-
    (if Id.equal vn.Vnode.id t.target.(i) then v_delivered else v_predecessor)

let rec settle_scan t i target = function
  | [] -> ()
  | (vn : Vnode.t) :: tl ->
    (if
       vn.Vnode.alive
       &&
       match vn.Vnode.host_class with
       | Vnode.Ephemeral -> Id.equal vn.Vnode.id target
       | Vnode.Stable | Vnode.Router_default -> true
     then
       if (not t.sel_some) || Id.closer_clockwise ~target vn.Vnode.id t.sel_id
       then begin
         t.sel_some <- true;
         t.sel_vn <- vn;
         t.sel_id <- vn.Vnode.id
       end);
    settle_scan t i target tl

(* Recovery exhausted: settle for the best eligible local resident. *)
let finish_settle t i cur =
  t.sel_some <- false;
  settle_scan t i t.target.(i) t.net.Network.routers.(cur).Network.residents;
  if t.sel_some then finish_local t i t.sel_vn else finish_stuck t i

(* -- committed routes ---------------------------------------------------- *)

let rec copy_hops buf base k = function
  | [] -> k
  | h :: tl ->
    buf.(base + k) <- h;
    copy_hops buf base (k + 1) tl

let install_route t i hops =
  t.route_len.(i) <- copy_hops t.route_buf (i * t.route_cap) 0 hops;
  t.route_pos.(i) <- 0;
  true

let commit_route t i cur (p : Pointer.t) =
  match Sourceroute.hops p.Pointer.route with
  | hd :: rest when hd = cur -> install_route t i rest
  | _ -> (
    (* Route does not start here (cached suffix mismatch): fall back to the
       network map — the sequential walk's cold path, allocation accepted. *)
    match Linkstate.path t.net.Network.ls cur p.Pointer.dst_router with
    | Some (_ :: rest) -> install_route t i rest
    | Some [] | None -> false)

(* One physical hop along the committed route: charge, count, accumulate
   latency.  The adjacency scan folds the static link check and the latency
   lookup into one alloc-free list walk. *)
let rec adj_step t i next = function
  | [] -> false
  | (w, l) :: tl ->
    if w = next then begin
      t.latency.(i) <- t.latency.(i) +. l;
      true
    end
    else adj_step t i next tl

let follow_one t i =
  if t.route_pos.(i) >= t.route_len.(i) then begin
    (* Empty committed tail: Blocked. *)
    finish_stuck t i;
    false
  end
  else begin
    let cur = t.pos.(i) in
    let k = t.route_pos.(i) in
    let next = t.route_buf.((i * t.route_cap) + k) in
    if adj_step t i next (Graph.neighbors t.net.Network.graph cur) then begin
      Metrics.charge_hop_via t.net.Network.metrics t.counter next;
      t.msgs.(i) <- t.msgs.(i) + 1;
      t.route_pos.(i) <- k + 1;
      t.pos.(i) <- next;
      t.guard.(i) <- t.guard.(i) + 1;
      true
    end
    else begin
      finish_stuck t i;
      false
    end
  end

(* -- stale-pointer NACK (cold path; emulated, deferred) ------------------ *)

let add_excl t i router kind id =
  let n = t.excl_n.(i) in
  if n < t.excl_cap then begin
    let at = (i * t.excl_cap) + n in
    t.excl_router.(at) <- router;
    t.excl_kind.(at) <- kind;
    t.excl_id.(at) <- id;
    t.excl_n.(i) <- n + 1
  end

let push_nack t cur owner chased =
  let cap = Array.length t.nack_owner in
  if t.nack_n >= cap then begin
    let grow a fill =
      let b = Array.make (2 * cap) fill in
      Array.blit a 0 b 0 cap;
      b
    in
    t.nack_owner <- grow t.nack_owner 0;
    t.nack_cur <- grow t.nack_cur 0;
    t.nack_chased <- grow t.nack_chased Id.zero
  end;
  t.nack_owner.(t.nack_n) <- owner;
  t.nack_cur.(t.nack_n) <- cur;
  t.nack_chased.(t.nack_n) <- chased;
  t.nack_n <- t.nack_n + 1

let emit_nack t i cur owner chased =
  (* Identical charge to the sequential NACK's teardown along the SPF path
     back to the pointer's owner. *)
  (match Linkstate.path t.net.Network.ls cur owner with
   | Some hops -> Charge.path t.net.Network.metrics Msg.teardown hops
   | None -> ());
  add_excl t i owner ex_full chased;
  add_excl t i cur ex_cache chased;
  push_nack t cur owner chased

(* -- the per-lookup step: one Walk iteration ----------------------------- *)

let step t i =
  if t.guard.(i) > t.step_limit then begin
    finish_stuck t i;
    false
  end
  else begin
    let cur = t.pos.(i) in
    let owner = t.commit_owner.(i) in
    let exhausted_now = owner < 0 || t.route_pos.(i) >= t.route_len.(i) in
    if
      exhausted_now
      && t.restarts.(i) < restart_limit
      && owner >= 0
      && not
           (resident_alive_in t.commit_chased.(i)
              t.net.Network.routers.(cur).Network.residents)
    then begin
      (* Stale pointer pruned (NACK): restart from here with a cleared
         horizon. *)
      emit_nack t i cur owner t.commit_chased.(i);
      t.commit_owner.(i) <- -1;
      t.best_valid.(i) <- 0;
      t.restarts.(i) <- t.restarts.(i) + 1;
      t.guard.(i) <- t.guard.(i) + 1;
      true
    end
    else begin
      select t i cur;
      if not t.sel_some then begin
        finish_stuck t i;
        false
      end
      else if t.sel_local then begin
        finish_local t i t.sel_vn;
        false
      end
      else begin
        let cid = t.sel_id in
        let commit_now =
          if t.best_valid.(i) = 1 then
            Id.closer_clockwise ~target:t.target.(i) cid t.best.(i)
          else
            (* Cleared horizon: the register is [succ target], the unique
               identifier at maximal clockwise distance, so "strictly
               closer" is "distance to target below the ring maximum" —
               testable against the constant (zero, max_value) span without
               materialising the sentinel. *)
            Id.compare_dist cid t.target.(i) Id.zero Id.max_value < 0
        in
        if commit_now then begin
          let p = t.sel_ptr in
          t.commit_owner.(i) <- cur;
          t.commit_chased.(i) <- p.Pointer.dst;
          if commit_route t i cur p then begin
            if follow_one t i then begin
              t.best.(i) <- cid;
              t.best_valid.(i) <- 1;
              true
            end
            else false
          end
          else begin
            finish_stuck t i;
            false
          end
        end
        else if owner >= 0 && t.route_pos.(i) < t.route_len.(i) then
          (* Nothing closer here; keep following the committed route. *)
          follow_one t i
        else begin
          finish_settle t i cur;
          false
        end
      end
    end
  end

(* -- batch driver -------------------------------------------------------- *)

let load t ~from ~targets =
  let n = Array.length targets in
  if Array.length from <> n then
    invalid_arg "Dataplane.Intra: from/targets length mismatch";
  ensure_capacity t n;
  t.n <- n;
  t.step_limit <-
    (match t.step_limit_override with
     | Some s -> s
     | None ->
       (4 * Graph.n t.net.Network.graph)
       + (2 * Ring.cardinal t.net.Network.oracle)
       + 16);
  for i = 0 to n - 1 do
    t.target.(i) <- targets.(i);
    t.pos.(i) <- from.(i);
    t.best_valid.(i) <- 0;
    t.commit_owner.(i) <- -1;
    t.restarts.(i) <- 0;
    t.guard.(i) <- 0;
    t.msgs.(i) <- 0;
    t.latency.(i) <- 0.0;
    t.verdict.(i) <- running;
    t.route_pos.(i) <- 0;
    t.route_len.(i) <- 0;
    t.excl_n.(i) <- 0;
    (* Injection charge: [Charge.inject] nets out to load at the origin. *)
    Metrics.charge_load t.net.Network.metrics from.(i)
  done

let run t ~from ~targets =
  load t ~from ~targets;
  t.remaining <- t.n;
  t.passes <- 0;
  while t.remaining > 0 do
    t.passes <- t.passes + 1;
    for i = 0 to t.n - 1 do
      if t.verdict.(i) = running then
        if not (step t i) then t.remaining <- t.remaining - 1
    done
  done

let run_sequential t ~from ~targets =
  load t ~from ~targets;
  t.passes <- 0;
  for i = 0 to t.n - 1 do
    while step t i do
      ()
    done
  done

(* -- results ------------------------------------------------------------- *)

let batch_size t = t.n
let passes t = t.passes

let status t i : Network.lookup_status =
  if i < 0 || i >= t.n then invalid_arg "Dataplane.Intra.status: index";
  match t.verdict.(i) with
  | 0 -> Network.Delivered t.verdict_vn.(i)
  | 1 -> Network.Predecessor t.verdict_vn.(i)
  | 2 -> Network.Stuck t.pos.(i)
  | _ -> invalid_arg "Dataplane.Intra.status: lookup still in flight"

let msgs t i = t.msgs.(i)
let latency_ms t i = t.latency.(i)
let restarts t i = t.restarts.(i)

let delivered_count t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if t.verdict.(i) = v_delivered then incr c
  done;
  !c

let total_hops t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    c := !c + t.msgs.(i)
  done;
  !c

let nack_count t = t.nack_n

let apply_nacks t =
  for k = 0 to t.nack_n - 1 do
    let owner = t.nack_owner.(k)
    and cur = t.nack_cur.(k)
    and chased = t.nack_chased.(k) in
    List.iter
      (fun (vn : Vnode.t) ->
        ignore
          (Vnode.drop_pointers_if vn (fun (p : Pointer.t) ->
               Id.equal p.Pointer.dst chased)))
      t.net.Network.routers.(owner).Network.residents;
    Pointer_cache.remove t.net.Network.routers.(owner).Network.cache chased;
    Pointer_cache.remove t.net.Network.routers.(cur).Network.cache chased
  done;
  t.nack_n <- 0

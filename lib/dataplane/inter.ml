module Id = Rofl_idspace.Id
module Ring = Rofl_idspace.Ring
module Pointer = Rofl_core.Pointer
module Pointer_cache = Rofl_core.Pointer_cache
module Msg = Rofl_core.Msg
module Charge = Rofl_routing.Charge
module Asgraph = Rofl_asgraph.Asgraph
module Net = Rofl_inter.Net
module Level = Rofl_inter.Level
module Route = Rofl_inter.Route

(* Batched interdomain forwarding: the `Per_move` walk of
   {!Rofl_inter.Route} advanced one AS-level move per pass over per-lookup
   registers.  Candidate choice and charge accounting go through the exact
   substrate functions {!Route.best_local_resident},
   {!Route.lowest_level_candidate} and {!Route.charge_move}, so they cannot
   drift from [route_from].

   The engine is read-only on AS state: the dead-cache-entry prune that the
   sequential walk applies inside [cache_candidate] is emulated per-lookup
   (each lookup sees exactly the cache it would have left behind) and
   queued for {!apply_purges}.  AS-granularity moves inherently allocate
   (level-restricted paths are materialised to charge per-AS load), so
   unlike the intradomain engine this one makes no zero-allocation claim —
   the batching win here is pass-level locality, not allocation.

   Bloom-filter peering consults a shared RNG on every cache probe and
   peer check; interleaving batched draws would change the stream, so in
   [Bloom_filters] mode {!run} falls back to driving [route_from]
   sequentially — same results, same draws, no equivalence caveats. *)

let running = -1
let v_failed = 0
let v_delivered = 1

type t = {
  net : Net.t;
  mutable cap : int;
  mutable n : int;
  mutable dst : Id.t array;
  mutable cur : int array;
  mutable pos : Id.t array;
  mutable pos_host : Net.host array;
  mutable ceiling : Level.t array;
  mutable as_hops : int array;
  mutable pointer_hops : int array;
  mutable cache_hops : int array;
  mutable peer_crossings : int array;
  mutable backtracks : int array;
  mutable max_breadth : int array;
  mutable guard : int array;
  mutable verdict : int array;
  (* per-lookup emulated cache prunes: (as, id) this lookup has seen die *)
  mutable purged : (int * Id.t) list array;
  (* deferred control-plane purge worklist *)
  mutable wl : (int * Id.t) list;
  mutable wl_n : int;
  mutable remaining : int;
  mutable passes : int;
  dummy_host : Net.host;
}

let create net =
  let dummy_host =
    {
      Net.id = Id.zero;
      home_as = 0;
      strategy = Net.Ephemeral;
      joined = [];
      fingers = [];
      alive_h = false;
    }
  in
  {
    net;
    cap = 0;
    n = 0;
    dst = [||];
    cur = [||];
    pos = [||];
    pos_host = [||];
    ceiling = [||];
    as_hops = [||];
    pointer_hops = [||];
    cache_hops = [||];
    peer_crossings = [||];
    backtracks = [||];
    max_breadth = [||];
    guard = [||];
    verdict = [||];
    purged = [||];
    wl = [];
    wl_n = 0;
    remaining = 0;
    passes = 0;
    dummy_host;
  }

let ensure_capacity t want =
  if want > t.cap then begin
    let cap = max want (max 16 (2 * t.cap)) in
    t.cap <- cap;
    t.dst <- Array.make cap Id.zero;
    t.cur <- Array.make cap 0;
    t.pos <- Array.make cap Id.zero;
    t.pos_host <- Array.make cap t.dummy_host;
    t.ceiling <- Array.make cap Level.Root;
    t.as_hops <- Array.make cap 0;
    t.pointer_hops <- Array.make cap 0;
    t.cache_hops <- Array.make cap 0;
    t.peer_crossings <- Array.make cap 0;
    t.backtracks <- Array.make cap 0;
    t.max_breadth <- Array.make cap 0;
    t.guard <- Array.make cap 0;
    t.verdict <- Array.make cap running;
    t.purged <- Array.make cap []
  end

let purged_has t i a id =
  List.exists (fun (pa, pid) -> pa = a && Id.equal pid id) t.purged.(i)

let record_purge t i a id =
  t.purged.(i) <- (a, id) :: t.purged.(i);
  t.wl <- (a, id) :: t.wl;
  t.wl_n <- t.wl_n + 1

(* [Pointer_cache.best_match ~cur:pos ~target:dst] over this lookup's
   prune-adjusted index: exact hit first (no interval gate — the target
   trivially qualifies), else the ring predecessor of [dst], gated by
   [between_incl pos _ dst].  Only the first surviving predecessor is
   considered, exactly like [Ring.predecessor] on the pruned index. *)
let best_match_pure t i as_idx ~pos ~dst =
  let ring = Pointer_cache.ring_index t.net.Net.caches.(as_idx) in
  match Ring.find dst ring with
  | Some p when not (purged_has t i as_idx dst) -> Some p
  | _ ->
    let rec scan start c steps =
      if Ring.cursor_is_none c then None
      else begin
        let id = Ring.id_at ring c in
        if not (purged_has t i as_idx id) then
          if Id.between_incl pos id dst then Some (Ring.value_at ring c)
          else None
        else begin
          let c' = Ring.cursor_prev ring c in
          if Ring.cursor_equal c' start || steps > Ring.cardinal ring then None
          else scan start c' (steps + 1)
        end
      end
    in
    let start = Ring.cursor_lt dst ring in
    scan start start 0

(* {!Route}'s [cache_candidate] without the eager prune: a dead or moved
   entry yields [None] for this lookup (recorded so later probes of the
   same AS within the lookup agree) and a deferred purge.  The bloom-mode
   false-positive conservatism draw cannot occur here: bloom mode never
   reaches this engine. *)
let cache_candidate_pure t i =
  let net = t.net in
  let as_idx = t.cur.(i) and pos = t.pos.(i) and dst = t.dst.(i) in
  if net.Net.cfg.Net.cache_capacity = 0 then None
  else begin
    let dst_below =
      match Net.locate net dst with
      | Some home -> Asgraph.in_cone (Level.graph net.Net.ctx) ~root:as_idx home
      | None -> false
    in
    if dst_below then None
    else
      match best_match_pure t i as_idx ~pos ~dst with
      | Some (p : Pointer.t) -> (
        match Hashtbl.find_opt net.Net.hosts p.Pointer.dst with
        | Some ch
          when ch.Net.alive_h
               && ch.Net.home_as = p.Pointer.dst_router
               && Id.between_incl pos p.Pointer.dst dst ->
          Some (p.Pointer.dst, ch)
        | Some _ | None ->
          record_purge t i as_idx p.Pointer.dst;
          None)
      | None -> None
  end

(* One `Per_move` walk iteration for lookup [i]; returns true while still
   in flight. *)
let step t i =
  let net = t.net in
  if t.guard.(i) > 4095 then begin
    t.verdict.(i) <- v_failed;
    false
  end
  else begin
    let arrived =
      match Net.locate net t.dst.(i) with
      | Some home -> home = t.cur.(i)
      | None -> false
    in
    if arrived then begin
      t.verdict.(i) <- v_delivered;
      false
    end
    else begin
      (* prepare: free intra-AS move to the closest local resident *)
      (match
         Route.best_local_resident net t.cur.(i) ~pos:t.pos.(i) ~dst:t.dst.(i)
       with
       | Some (mid, mh) when not (Id.equal mid t.pos.(i)) ->
         t.pos.(i) <- mid;
         t.pos_host.(i) <- mh
       | Some _ | None -> ());
      let ring_cand =
        Route.lowest_level_candidate net t.pos_host.(i) ~cur:t.cur.(i)
          ~pos:t.pos.(i) ~dst:t.dst.(i) ~ceiling:t.ceiling.(i)
      in
      let cache_cand = cache_candidate_pure t i in
      (* Keep-first over [ring; cache]: the cache shortcut overrides the
         ring candidate only when strictly closer to the destination. *)
      let take_cache =
        match (ring_cand, cache_cand) with
        | _, None -> false
        | None, Some _ -> true
        | Some (_, rid, _, _), Some (cid, _) ->
          Id.closer_clockwise ~target:t.dst.(i) cid rid
      in
      if take_cache then begin
        match cache_cand with
        | None -> assert false
        | Some (cid, ch) -> (
          match Route.charge_unrestricted net t.cur.(i) ch.Net.home_as with
          | None ->
            t.verdict.(i) <- v_failed;
            false
          | Some (d, _tail) ->
            t.as_hops.(i) <- t.as_hops.(i) + d;
            t.pointer_hops.(i) <- t.pointer_hops.(i) + 1;
            t.cache_hops.(i) <- t.cache_hops.(i) + 1;
            t.ceiling.(i) <- Level.Root;
            t.cur.(i) <- ch.Net.home_as;
            t.pos.(i) <- cid;
            t.pos_host.(i) <- ch;
            t.guard.(i) <- t.guard.(i) + 1;
            true)
      end
      else begin
        match ring_cand with
        | None ->
          (* no candidate at all (non-bloom): undeliverable *)
          t.verdict.(i) <- v_failed;
          false
        | Some (level, cid, ch, narrows) -> (
          match Route.charge_move net level t.cur.(i) ch.Net.home_as with
          | None ->
            t.verdict.(i) <- v_failed;
            false
          | Some (d, _tail) ->
            t.as_hops.(i) <- t.as_hops.(i) + d;
            t.pointer_hops.(i) <- t.pointer_hops.(i) + 1;
            t.max_breadth.(i) <-
              max t.max_breadth.(i) (Level.breadth net.Net.ctx level);
            t.cur.(i) <- ch.Net.home_as;
            t.pos.(i) <- cid;
            t.pos_host.(i) <- ch;
            if narrows then t.ceiling.(i) <- level;
            t.guard.(i) <- t.guard.(i) + 1;
            true)
      end
    end
  end

let load t ~srcs ~dsts =
  let n = Array.length dsts in
  if Array.length srcs <> n then
    invalid_arg "Dataplane.Inter: srcs/dsts length mismatch";
  ensure_capacity t n;
  t.n <- n;
  for i = 0 to n - 1 do
    let src : Net.host = srcs.(i) in
    t.dst.(i) <- dsts.(i);
    t.cur.(i) <- src.Net.home_as;
    t.pos.(i) <- src.Net.id;
    t.pos_host.(i) <- src;
    t.ceiling.(i) <- Level.Root;
    t.as_hops.(i) <- 0;
    t.pointer_hops.(i) <- 0;
    t.cache_hops.(i) <- 0;
    t.peer_crossings.(i) <- 0;
    t.backtracks.(i) <- 0;
    t.max_breadth.(i) <- 0;
    t.guard.(i) <- 0;
    t.verdict.(i) <- running;
    t.purged.(i) <- [];
    Charge.inject t.net.Net.metrics Msg.data src.Net.home_as
  done

let store_result t i (r : Route.result) =
  t.verdict.(i) <- (if r.Route.delivered then v_delivered else v_failed);
  t.as_hops.(i) <- r.Route.as_hops;
  t.pointer_hops.(i) <- r.Route.pointer_hops;
  t.cache_hops.(i) <- r.Route.cache_hops;
  t.peer_crossings.(i) <- r.Route.peer_crossings;
  t.backtracks.(i) <- r.Route.backtracks;
  t.max_breadth.(i) <- r.Route.max_level_breadth

(* Bloom-filter peering draws from the shared RNG on cache probes and peer
   checks: batching would reorder the stream.  Fall back to the sequential
   walk — exact semantics, including the draws. *)
let run_bloom_fallback t ~srcs ~dsts =
  let n = Array.length dsts in
  ensure_capacity t n;
  t.n <- n;
  t.passes <- 0;
  for i = 0 to n - 1 do
    store_result t i (Route.route_from t.net ~src:srcs.(i) ~dst:dsts.(i))
  done

let run t ~srcs ~dsts =
  if t.net.Net.cfg.Net.peering_mode = Net.Bloom_filters then
    run_bloom_fallback t ~srcs ~dsts
  else begin
    load t ~srcs ~dsts;
    t.remaining <- t.n;
    t.passes <- 0;
    while t.remaining > 0 do
      t.passes <- t.passes + 1;
      for i = 0 to t.n - 1 do
        if t.verdict.(i) = running then
          if not (step t i) then t.remaining <- t.remaining - 1
      done
    done
  end

let run_sequential t ~srcs ~dsts =
  if t.net.Net.cfg.Net.peering_mode = Net.Bloom_filters then
    run_bloom_fallback t ~srcs ~dsts
  else begin
    load t ~srcs ~dsts;
    t.passes <- 0;
    for i = 0 to t.n - 1 do
      while step t i do
        ()
      done
    done
  end

let batch_size t = t.n
let passes t = t.passes

let check_idx t i op =
  if i < 0 || i >= t.n then invalid_arg ("Dataplane.Inter." ^ op ^ ": index")

let delivered t i =
  check_idx t i "delivered";
  t.verdict.(i) = v_delivered

let as_hops t i = t.as_hops.(i)
let pointer_hops t i = t.pointer_hops.(i)
let cache_hops t i = t.cache_hops.(i)
let peer_crossings t i = t.peer_crossings.(i)
let backtracks t i = t.backtracks.(i)
let max_level_breadth t i = t.max_breadth.(i)

let delivered_count t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if t.verdict.(i) = v_delivered then incr c
  done;
  !c

let total_as_hops t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    c := !c + t.as_hops.(i)
  done;
  !c

let purge_count t = t.wl_n

let apply_purges t =
  List.iter
    (fun (a, id) -> Pointer_cache.remove t.net.Net.caches.(a) id)
    t.wl;
  t.wl <- [];
  t.wl_n <- 0

(** α-parallel register file for the batched data plane.

    Same stage/run/read discipline as {!Proto_batch}, but every staged
    lookup is walked by up to α concurrent greedy branches with
    first-success semantics: branch 0 starts at the staged origin, extra
    branches start from diversified pointers (pointer-cache entry closest
    to the target, successor-list backups, predecessor).  The first branch
    to reach the owner wins; live siblings are cooperatively cancelled and
    their hops land in the duplicate-work ledger.

    Branch registers are acquired from this file's slot pool when [run]
    seeds the branches and released as branches win, die, or are
    cancelled.  {!slots_in_flight} is the freelist invariant: it must read
    0 after every run — a cancellation path that strands a slot is a bug.

    Determinism: branch seeding and the win tie-break (lowest branch
    index within the fixed per-pass draw order) depend only on staged
    order and table state, so results are byte-identical at any
    [--jobs]/[--shards]. *)

type t

val create : ?hint:int -> ?alpha:int -> Rofl_proto.Proto.t -> t
(** [create ?hint ?alpha proto] sizes the file for about [hint] lookups
    (default 16, growing by doubling) of [alpha] branches each (default 1,
    which walks exactly like {!Proto_batch}).  Raises [Invalid_argument]
    if [alpha < 1]. *)

val proto : t -> Rofl_proto.Proto.t

val alpha : t -> int

val clear : t -> unit
(** Forget staged lookups; registers and ledgers are retained. *)

val stage : t -> from:int -> target:Rofl_idspace.Id.t -> int
(** Stage one lookup; the returned index reads back its results after
    {!run}. *)

val length : t -> int

val run : t -> unit
(** Resolve every staged lookup with α-parallel walks.  Allocation-free on
    the walk path; results persist until the next [run] or {!clear}. *)

val resolved : t -> int -> bool

val owner_id : t -> int -> Rofl_idspace.Id.t
(** Raises [Invalid_argument] when the lookup did not resolve. *)

val owner_router : t -> int -> int
(** Hosting router of the owner, [-1] when unresolved. *)

val winner_branch : t -> int -> int
(** Which branch reached the owner first ([-1] when unresolved). *)

val branches : t -> int -> int
(** Branches actually seeded for this lookup (1 ≤ branches ≤ α — fewer
    when the origin's tables offer no diversified start pointers). *)

val ring_hops : t -> int -> int
(** Ring hops taken by the winning branch (branch 0 when unresolved). *)

val wasted_hops : t -> int -> int
(** Ring hops burned by this lookup's losing branches — the
    duplicate-work price of redundancy, disjoint from {!ring_hops}. *)

val wasted_link_hops : t -> int -> int
(** Link traversals burned by the losing branches — what message
    accounting should charge on top of {!link_hops}. *)

val link_hops : t -> int -> int

val latency_ms : t -> int -> float

val slots_in_flight : t -> int
(** Branch slots acquired but never released by the last [run] — the
    freelist invariant; always 0 unless the engine is broken. *)

val cancellations : t -> int
(** Cooperative cancellations issued during the last [run]. *)

val total_cancellations : t -> int
(** Cumulative across the file's lifetime. *)

val total_wasted_hops : t -> int
(** Cumulative losing-branch ring hops across the file's lifetime. *)

(* α-parallel register file over [Proto.lookup_owner_alpha_into]: the
   batched data plane's front-end for redundant lookups.  Like
   [Proto_batch] it persists registers across rounds — stage, run, read —
   but each staged lookup owns up to α branch-register slots, acquired from
   the file's freelist when [run] seeds the branches and released as
   branches win, die, or are cancelled.  [slots_in_flight] must read 0
   after every run: a cancellation path that strands a slot is a bug the
   test suite pins directly against this counter.

   The engine itself lives in [Proto] (the walk needs store internals);
   this layer owns the memory, the freelist discipline, and the
   duplicate-work ledger the α sweeps report. *)

module Id = Rofl_idspace.Id
module Proto = Rofl_proto.Proto

type t = {
  proto : Proto.t;
  alpha : int;
  mutable cap : int;
  mutable n : int;
  (* per-lookup registers *)
  mutable from : int array;
  mutable targets : Id.t array;
  mutable found : bool array;
  mutable owner : Id.t array;
  mutable lk_done : Bytes.t;
  mutable br_count : int array;
  mutable owner_router : int array;
  mutable winner_branch : int array;
  mutable branches : int array;
  mutable ring_hops : int array;
  mutable wasted_hops : int array;
  mutable wasted_link : int array;
  mutable link_hops : int array;
  mutable latency_ms : float array;
  (* branch registers, cap * alpha flat *)
  mutable br_router : int array;
  mutable br_best : Id.t array;
  mutable br_best_valid : Bytes.t;
  mutable br_guard : int array;
  mutable br_hops : int array;
  mutable br_link_hops : int array;
  mutable br_latency_ms : float array;
  mutable br_live : Bytes.t;
  (* freelist + ledgers *)
  mutable in_flight : int;
  mutable last_cancellations : int;
  mutable total_cancellations : int;
  mutable total_wasted : int;
}

let create ?(hint = 16) ?(alpha = 1) proto =
  if alpha < 1 then invalid_arg "Alpha.create: alpha must be >= 1";
  let cap = max 1 hint in
  let ca = cap * alpha in
  {
    proto;
    alpha;
    cap;
    n = 0;
    from = Array.make cap 0;
    targets = Array.make cap Id.zero;
    found = Array.make cap false;
    owner = Array.make cap Id.zero;
    lk_done = Bytes.create cap;
    br_count = Array.make cap 0;
    owner_router = Array.make cap (-1);
    winner_branch = Array.make cap (-1);
    branches = Array.make cap 0;
    ring_hops = Array.make cap 0;
    wasted_hops = Array.make cap 0;
    wasted_link = Array.make cap 0;
    link_hops = Array.make cap 0;
    latency_ms = Array.make cap 0.0;
    br_router = Array.make ca 0;
    br_best = Array.make ca Id.zero;
    br_best_valid = Bytes.create ca;
    br_guard = Array.make ca 0;
    br_hops = Array.make ca 0;
    br_link_hops = Array.make ca 0;
    br_latency_ms = Array.make ca 0.0;
    br_live = Bytes.make ca '\000';
    in_flight = 0;
    last_cancellations = 0;
    total_cancellations = 0;
    total_wasted = 0;
  }

let proto t = t.proto

let alpha t = t.alpha

let grow t cap =
  let cap = max cap (2 * t.cap) in
  let ca = cap * t.alpha in
  let copy a dummy =
    let b = Array.make cap dummy in
    Array.blit a 0 b 0 t.cap;
    b
  in
  let copy_br a dummy =
    let b = Array.make ca dummy in
    Array.blit a 0 b 0 (t.cap * t.alpha);
    b
  in
  t.from <- copy t.from 0;
  t.targets <- copy t.targets Id.zero;
  t.found <- copy t.found false;
  t.owner <- copy t.owner Id.zero;
  (let b = Bytes.make cap '\000' in
   Bytes.blit t.lk_done 0 b 0 t.cap;
   t.lk_done <- b);
  t.br_count <- copy t.br_count 0;
  t.owner_router <- copy t.owner_router (-1);
  t.winner_branch <- copy t.winner_branch (-1);
  t.branches <- copy t.branches 0;
  t.ring_hops <- copy t.ring_hops 0;
  t.wasted_hops <- copy t.wasted_hops 0;
  t.wasted_link <- copy t.wasted_link 0;
  t.link_hops <- copy t.link_hops 0;
  t.latency_ms <- copy t.latency_ms 0.0;
  t.br_router <- copy_br t.br_router 0;
  t.br_best <- copy_br t.br_best Id.zero;
  (let b = Bytes.make ca '\000' in
   Bytes.blit t.br_best_valid 0 b 0 (t.cap * t.alpha);
   t.br_best_valid <- b);
  t.br_guard <- copy_br t.br_guard 0;
  t.br_hops <- copy_br t.br_hops 0;
  t.br_link_hops <- copy_br t.br_link_hops 0;
  t.br_latency_ms <- copy_br t.br_latency_ms 0.0;
  (let b = Bytes.make ca '\000' in
   Bytes.blit t.br_live 0 b 0 (t.cap * t.alpha);
   t.br_live <- b);
  t.cap <- cap

let clear t = t.n <- 0

let stage t ~from ~target =
  if t.n >= t.cap then grow t (t.n + 1);
  let i = t.n in
  t.from.(i) <- from;
  t.targets.(i) <- target;
  t.n <- i + 1;
  i

let length t = t.n

let run t =
  let stats =
    {
      Proto.al_owner_router = t.owner_router;
      al_winner_branch = t.winner_branch;
      al_branches = t.branches;
      al_ring_hops = t.ring_hops;
      al_wasted_hops = t.wasted_hops;
      al_link_hops = t.link_hops;
      al_latency_ms = t.latency_ms;
    }
  in
  let cancelled, released =
    Proto.lookup_owner_alpha_into t.proto ~n:t.n ~alpha:t.alpha ~from:t.from
      ~targets:t.targets ~found:t.found ~owner:t.owner ~lk_done:t.lk_done
      ~br_count:t.br_count ~br_router:t.br_router ~br_best:t.br_best
      ~br_best_valid:t.br_best_valid ~br_guard:t.br_guard ~br_hops:t.br_hops
      ~br_link_hops:t.br_link_hops ~br_latency_ms:t.br_latency_ms
      ~br_live:t.br_live ~stats:(Some stats)
  in
  let acquired = ref 0 in
  for i = 0 to t.n - 1 do
    acquired := !acquired + t.br_count.(i)
  done;
  t.in_flight <- !acquired - released;
  t.last_cancellations <- cancelled;
  t.total_cancellations <- t.total_cancellations + cancelled;
  (* Settle the wasted-LINK ledger from the branch registers: the engine's
     [wasted_hops] counts ring hops; message accounting needs the link
     traversals the losers burned (same exclusion rule — the winner, or
     branch 0 when unresolved, is the answer's own cost). *)
  for i = 0 to t.n - 1 do
    t.total_wasted <- t.total_wasted + t.wasted_hops.(i);
    let base = i * t.alpha in
    let keep = if t.winner_branch.(i) >= 0 then t.winner_branch.(i) else 0 in
    let wl = ref 0 in
    for b = 0 to t.br_count.(i) - 1 do
      if b <> keep then wl := !wl + t.br_link_hops.(base + b)
    done;
    t.wasted_link.(i) <- !wl
  done

let check t i name =
  if i < 0 || i >= t.n then invalid_arg ("Alpha." ^ name ^ ": index out of batch")

let resolved t i =
  check t i "resolved";
  t.found.(i)

let owner_id t i =
  check t i "owner_id";
  if not t.found.(i) then invalid_arg "Alpha.owner_id: unresolved lookup";
  t.owner.(i)

let owner_router t i =
  check t i "owner_router";
  t.owner_router.(i)

let winner_branch t i =
  check t i "winner_branch";
  t.winner_branch.(i)

let branches t i =
  check t i "branches";
  t.branches.(i)

let ring_hops t i =
  check t i "ring_hops";
  t.ring_hops.(i)

let wasted_hops t i =
  check t i "wasted_hops";
  t.wasted_hops.(i)

let wasted_link_hops t i =
  check t i "wasted_link_hops";
  t.wasted_link.(i)

let link_hops t i =
  check t i "link_hops";
  t.link_hops.(i)

let latency_ms t i =
  check t i "latency_ms";
  t.latency_ms.(i)

let slots_in_flight t = t.in_flight

let cancellations t = t.last_cancellations

let total_cancellations t = t.total_cancellations

let total_wasted_hops t = t.total_wasted

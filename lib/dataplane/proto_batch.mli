(** Reusable register file for the actor network's batched owner walks.

    {!Rofl_proto.Proto.lookup_owner_batch} answers one batch and allocates
    its registers per call; steady-state data-plane consumers (the
    service-discovery resolver's miss path, the bench hot loop) resolve
    round after round.  This module keeps the batch arrays alive between
    rounds: {!stage} lookups, {!run} the fused walk, read the verdicts
    through the accessors, {!clear}, repeat — no per-round allocation beyond
    the walk's own shortest-path pricing.  Verdicts are byte-identical to
    [lookup_owner_batch] (same walk, pinned in [test_dataplane] /
    [test_services]). *)

type t

val create : ?hint:int -> Rofl_proto.Proto.t -> t
(** [hint] pre-sizes the registers for the expected batch width (Little's
    law: arrival rate x batching window); they grow by doubling
    regardless. *)

val proto : t -> Rofl_proto.Proto.t

val clear : t -> unit
(** Forget the staged lookups (verdict registers are reused lazily). *)

val stage : t -> from:int -> target:Rofl_idspace.Id.t -> int
(** Append a lookup to the batch and return its index. *)

val length : t -> int

val run : t -> unit
(** Advance every staged walk to a verdict (one fused pass machine over the
    current pointer state — pure-read, nothing scheduled). *)

val resolved : t -> int -> bool
(** Whether lookup [i] found an owner. *)

val owner_id : t -> int -> Rofl_idspace.Id.t
(** The owner verdict of lookup [i]; raises on an unresolved lookup. *)

val owner_router : t -> int -> int
(** Router where the verdict landed; [-1] when unresolved. *)

val ring_hops : t -> int -> int
(** Greedy ring hops the walk took. *)

val link_hops : t -> int -> int
(** Physical link traversals under the walk (each ring hop priced by the
    link-state shortest path). *)

val latency_ms : t -> int -> float
(** Summed shortest-path latency of the walk's ring hops. *)

type t = int list

let of_hops = function
  | [] -> invalid_arg "Sourceroute.of_hops: empty route"
  | hops -> hops

let singleton r = [ r ]

let hops t = t

let origin = function
  | r :: _ -> r
  | [] -> invalid_arg "Sourceroute.origin: empty"

let destination t =
  match List.rev t with
  | r :: _ -> r
  | [] -> invalid_arg "Sourceroute.destination: empty"

let length t = List.length t - 1

let reverse = List.rev

let concat a b =
  match b with
  | junction :: rest ->
    if destination a <> junction then
      invalid_arg "Sourceroute.concat: routes do not meet"
    else a @ rest
  | [] -> invalid_arg "Sourceroute.concat: empty second route"

let contains_router t r = List.mem r t

let is_valid ls t =
  match t with
  | [] -> false
  | _ -> Rofl_linkstate.Linkstate.valid_source_route ls t

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "->")
       Format.pp_print_int)
    t

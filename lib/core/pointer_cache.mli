(** Bounded pointer caches with greedy best-match lookup.

    "Whenever a source route is established, the routers along the path can
    cache the route. […] The pointer-cache of routers is limited in size, and
    precedence is given to pointers in the [ring-state] class" (§2.2).  This
    cache stores the {e cached} class: ring state lives in vnodes and is
    never evicted.  Lookup answers the greedy question — the cached
    identifier closest to, but not past, a destination — in O(log n) via a
    ring-ordered index kept in sync with the LRU recency list. *)

type t

val create : capacity:int -> t

val capacity : t -> int

val length : t -> int

val insert : t -> Pointer.t -> unit
(** Insert keyed by the pointer's destination identifier, evicting the LRU
    entry if full.  A re-insert refreshes recency and replaces the route. *)

val find : t -> Rofl_idspace.Id.t -> Pointer.t option
(** Exact lookup (refreshes recency). *)

val ring_index : t -> Pointer.t Rofl_idspace.Ring.t
(** The live ring-ordered index over the cached destinations — a read-only
    window for allocation-free cursor probes (the batched data plane walks
    it instead of {!best_match}, which allocates an option and touches LRU
    recency).  The handle is only current until the next mutation of the
    cache. *)

val best_match : t -> cur:Rofl_idspace.Id.t -> target:Rofl_idspace.Id.t -> Pointer.t option
(** The cached pointer whose identifier lies in the ring interval
    [(cur, target]] and is closest to [target] — i.e. strictly better greedy
    progress than standing still at [cur], and never past the target.
    Refreshes recency of the returned entry. *)

val remove : t -> Rofl_idspace.Id.t -> unit

val drop_if : t -> (Pointer.t -> bool) -> int
(** Remove entries matching a predicate (e.g. routes through a failed link);
    returns the number dropped. *)

val iter : t -> (Pointer.t -> unit) -> unit

val clear : t -> unit

val resize : t -> capacity:int -> unit

val audit : t -> string list
(** Structural agreement between the LRU recency list and the ring-ordered
    index: same cardinality, every LRU binding present in the index with the
    same destination pointer, no index entry the LRU has forgotten.  Empty
    iff consistent — the ring doctor runs this at checkpoints, since a
    divergence silently corrupts {!best_match} answers. *)

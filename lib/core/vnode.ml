module Id = Rofl_idspace.Id

type host_class = Router_default | Stable | Ephemeral

type t = {
  id : Id.t;
  host_class : host_class;
  mutable hosted_at : int;
  mutable succs : Pointer.t list;
  mutable preds : Pointer.t list;
  mutable alive : bool;
}

let create id host_class ~hosted_at =
  { id; host_class; hosted_at; succs = []; preds = []; alive = true }

let is_default v = v.host_class = Router_default

let first_succ v = match v.succs with [] -> None | p :: _ -> Some p

let first_pred v = match v.preds with [] -> None | p :: _ -> Some p

let sort_clockwise id ps =
  List.sort
    (fun (a : Pointer.t) (b : Pointer.t) -> Id.compare_dist id a.dst id b.dst)
    ps

let sort_counter_clockwise id ps =
  List.sort
    (fun (a : Pointer.t) (b : Pointer.t) -> Id.compare_dist a.dst id b.dst id)
    ps

let dedup_by_dst ps =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (p : Pointer.t) ->
      if Hashtbl.mem seen p.dst then false
      else begin
        Hashtbl.add seen p.dst ();
        true
      end)
    ps

let take n l =
  let rec go acc n = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: rest -> go (x :: acc) (n - 1) rest
  in
  go [] n l

let set_succs v ps = v.succs <- dedup_by_dst (sort_clockwise v.id ps)

let set_preds v ps = v.preds <- dedup_by_dst (sort_counter_clockwise v.id ps)

let add_succ v p ~max_group =
  v.succs <- take max_group (dedup_by_dst (sort_clockwise v.id (p :: v.succs)))

let add_pred v p ~max_group =
  v.preds <- take max_group (dedup_by_dst (sort_counter_clockwise v.id (p :: v.preds)))

let remove_succ v id = v.succs <- List.filter (fun (p : Pointer.t) -> not (Id.equal p.dst id)) v.succs

let remove_pred v id = v.preds <- List.filter (fun (p : Pointer.t) -> not (Id.equal p.dst id)) v.preds

let drop_pointers_if v doomed =
  let count = ref 0 in
  let keep p = if doomed p then begin incr count; false end else true in
  v.succs <- List.filter keep v.succs;
  v.preds <- List.filter keep v.preds;
  !count

let state_entries v = List.length v.succs + List.length v.preds

let host_class_to_string = function
  | Router_default -> "router-default"
  | Stable -> "stable"
  | Ephemeral -> "ephemeral"

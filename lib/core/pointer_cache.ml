module Id = Rofl_idspace.Id
module Ring = Rofl_idspace.Ring
module Lru = Rofl_util.Lru

type t = {
  lru : (Id.t, Pointer.t) Lru.t;
  mutable index : Pointer.t Ring.t; (* same bindings, ring-ordered *)
}

let create ~capacity = { lru = Lru.create ~capacity; index = Ring.empty }

let capacity c = Lru.capacity c.lru

let length c = Lru.length c.lru

let insert c (p : Pointer.t) =
  (match Lru.put c.lru p.dst p with
   | Some (evicted_key, _) when not (Id.equal evicted_key p.dst) ->
     c.index <- Ring.remove evicted_key c.index
   | Some _ | None -> ());
  if Lru.mem c.lru p.dst then c.index <- Ring.add p.dst p c.index

let find c id = Lru.find c.lru id

let ring_index c = c.index

let best_match c ~cur ~target =
  (* Exact hit first, else the ring predecessor of target (closest not
     past), accepted only if it improves on cur. *)
  match Ring.find target c.index with
  | Some p ->
    ignore (Lru.find c.lru target);
    Some p
  | None ->
    (match Ring.predecessor target c.index with
     | Some (id, p) when Id.between_incl cur id target ->
       ignore (Lru.find c.lru id);
       Some p
     | Some _ | None -> None)

let remove c id =
  Lru.remove c.lru id;
  c.index <- Ring.remove id c.index

let drop_if c doomed =
  let victims =
    Lru.fold c.lru ~init:[] ~f:(fun acc id p -> if doomed p then id :: acc else acc)
  in
  List.iter (remove c) victims;
  List.length victims

let iter c f = Lru.iter c.lru (fun _ p -> f p)

let clear c =
  Lru.clear c.lru;
  c.index <- Ring.empty

let resize c ~capacity =
  Lru.resize c.lru ~capacity;
  (* Rebuild the ring index to drop evicted entries. *)
  let fresh = Lru.fold c.lru ~init:Ring.empty ~f:(fun acc id p -> Ring.add id p acc) in
  c.index <- fresh

let audit c =
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let lru_n = Lru.length c.lru and idx_n = Ring.cardinal c.index in
  if lru_n <> idx_n then bad "lru holds %d entries, ring index %d" lru_n idx_n;
  Lru.iter c.lru (fun id (p : Pointer.t) ->
      match Ring.find id c.index with
      | None -> bad "%s in lru but missing from ring index" (Id.to_short_string id)
      | Some (q : Pointer.t) ->
        if not (Id.equal q.dst p.dst && q.dst_router = p.dst_router) then
          bad "%s bound to different pointers in lru and ring index"
            (Id.to_short_string id));
  Ring.iter
    (fun id _ ->
      if not (Lru.mem c.lru id) then
        bad "%s in ring index but missing from lru" (Id.to_short_string id))
    c.index;
  List.rev !problems

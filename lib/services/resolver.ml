module Id = Rofl_idspace.Id
module Lru = Rofl_util.Lru
module Metrics = Rofl_netsim.Metrics

(* Bounded LRU response cache at a resolver router.

   Positive entries hold the provider set an owner answered with; negative
   entries ([providers = [||]]) remember that the owner had no record, so
   repeat queries for dead names are absorbed locally (classic negative
   caching).  Freshness is wall-clock simulated time: an entry past
   [fresh_until_ms] is a miss and is dropped on sight — unless the
   [serve_stale] fault knob is on, which deliberately keeps serving decayed
   entries so the doctor's no-expired-answer invariant has something to
   catch.  Hit/miss/negative counters are interned {!Metrics} handles on the
   directory's shared accounting, so the bench rows and the campaign SLOs
   read the same cells. *)

type config = {
  capacity : int;          (* bound on cached services; 0 disables caching *)
  cache_ttl_ms : float;    (* freshness window of a positive answer *)
  neg_ttl_ms : float;      (* freshness window of a negative answer *)
  stale_grace_ms : float;  (* serving past fresh+grace is an invariant violation *)
  serve_stale : bool;      (* fault injection: keep serving decayed entries *)
}

let default_config =
  {
    capacity = 1024;
    cache_ttl_ms = 2_000.0;
    neg_ttl_ms = 1_000.0;
    stale_grace_ms = 1_000.0;
    serve_stale = false;
  }

type entry = {
  providers : Id.t array;  (* [||] = negative entry *)
  installed_ms : float;
  fresh_until_ms : float;
}

type t = {
  cfg : config;
  router : int;
  cache : (Id.t, entry) Lru.t;
  hits : int ref;
  misses : int ref;
  neg_hits : int ref;
  evictions : int ref;
  mutable served_expired : int;
}

let create ~metrics ~router cfg =
  {
    cfg;
    router;
    cache = Lru.create ~capacity:cfg.capacity;
    hits = Metrics.handle metrics "svc-cache-hit";
    misses = Metrics.handle metrics "svc-cache-miss";
    neg_hits = Metrics.handle metrics "svc-cache-neg-hit";
    evictions = Metrics.handle metrics "svc-cache-evict";
    served_expired = 0;
  }

let router t = t.router
let config t = t.cfg
let length t = Lru.length t.cache
let served_expired t = t.served_expired

let find t ~now service =
  match Lru.find t.cache service with
  | None ->
    incr t.misses;
    None
  | Some e ->
    if now < e.fresh_until_ms then begin
      if Array.length e.providers = 0 then incr t.neg_hits else incr t.hits;
      Some e
    end
    else if t.cfg.serve_stale then begin
      (* Fault path: the answer decayed and we serve it anyway.  Within the
         grace window that is merely a stale answer; past it, it is the
         served-expired violation the doctor audits for. *)
      if now >= e.fresh_until_ms +. t.cfg.stale_grace_ms then
        t.served_expired <- t.served_expired + 1;
      if Array.length e.providers = 0 then incr t.neg_hits else incr t.hits;
      Some e
    end
    else begin
      Lru.remove t.cache service;
      incr t.misses;
      None
    end

let install t ~now service providers =
  let ttl =
    if Array.length providers = 0 then t.cfg.neg_ttl_ms else t.cfg.cache_ttl_ms
  in
  let e = { providers; installed_ms = now; fresh_until_ms = now +. ttl } in
  match Lru.put t.cache service e with
  | Some _ -> incr t.evictions
  | None -> ()

let iter t f = Lru.iter t.cache f

let clear t = Lru.clear t.cache

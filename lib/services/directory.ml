module Id = Rofl_idspace.Id
module Metrics = Rofl_netsim.Metrics
module Proto = Rofl_proto.Proto
module Proto_batch = Rofl_dataplane.Proto_batch
module Alpha = Rofl_dataplane.Alpha

(* The service-discovery directory over one actor network.

   Three layers of state:

   - *Intents* — the authoritative publication set: (service, provider,
     origin router) rows an origin keeps republishing while active.  Flat
     columns with a per-service chain off a load-hint-sized Hashtbl; this
     is also the instrumentation oracle the campaign's stale-answer SLO
     compares served answers against.

   - *Placed records* — the {!Provider_store}: the copy of each intent that
     currently lives at the ring owner of its service identifier, plus any
     decaying copies at previous owners.  Placement is resolved through the
     batched data plane ({!Rofl_dataplane.Proto_batch} over
     [Proto.lookup_owner_batch_into]), never through an oracle: a publish
     goes where the walk says the owner is.

   - *Resolver caches* — one bounded LRU {!Resolver} per querying router,
     created lazily.

   All mutation happens from campaign global events (every shard parked),
   so one directory serves any [--shards]/[--jobs] setting without
   per-shard buckets; determinism follows from intents being processed in
   index order and batches in staging order.

   Timing discipline: [ttl_ms > republish_period_ms] (default 2.5x) so a
   steadily-republished record never expires; after an ownership change the
   next republish re-places the record at the new owner and the old copy
   decays by TTL — the residency the doctor audits, and the staleness the
   campaign measures. *)

type config = {
  ttl_ms : float;                (* record TTL granted by each publish *)
  republish_period_ms : float;   (* origin republish cadence *)
  alpha : int;                   (* parallel branches per resolve miss *)
  cache : Resolver.config;
}

let default_config =
  { ttl_ms = 10_000.0; republish_period_ms = 4_000.0; alpha = 1;
    cache = Resolver.default_config }

type t = {
  proto : Proto.t;
  cfg : config;
  routers : int;
  metrics : Metrics.t;
  store : Provider_store.t;
  pb : Proto_batch.t;
  ab : Alpha.t;                      (* resolve-miss walks when alpha > 1 *)
  resolvers : Resolver.t option array;
  (* intents: struct-of-arrays, never compacted (inactive rows stay) *)
  mutable icap : int;
  mutable icount : int;
  mutable i_service : Id.t array;
  mutable i_provider : Id.t array;
  mutable i_origin : int array;
  mutable i_active : bool array;
  mutable i_last_ms : float array;   (* last successful publish; -inf = never *)
  mutable i_offset_ms : float array; (* stagger phase within the period *)
  mutable i_slot : int array;        (* current placement slot, -1 *)
  mutable i_gen : int array;         (* store gen validating i_slot *)
  mutable i_snext : int array;       (* per-service intent chain *)
  ihead : (Id.t, int) Hashtbl.t;
  (* resolve registers, reused across batches *)
  mutable rcap : int;
  mutable r_hit : bool array;
  mutable r_pos : bool array;
  mutable r_ok : bool array;
  mutable r_stale : bool array;
  mutable r_lat : float array;
  mutable m_idx : int array;         (* miss j -> batch position i *)
  mutable pbuf : Id.t array;         (* provider read scratch *)
  (* interned accounting *)
  h_pub_msg : int ref;               (* link traversals of publish walks *)
  h_res_msg : int ref;               (* link traversals of miss resolutions *)
  h_republish : int ref;             (* publish operations completed *)
  h_expired : int ref;               (* records dropped by TTL sweeps *)
  h_stale : int ref;                 (* answers that disagreed with the oracle *)
  mutable last_sweep_ms : float;
}

let create ~proto ~routers ~hint cfg =
  let icap = max 16 hint in
  let metrics = Metrics.create ~routers in
  {
    proto;
    cfg;
    routers;
    metrics;
    store = Provider_store.create ~routers ~hint ();
    pb = Proto_batch.create ~hint proto;
    ab = Alpha.create ~hint ~alpha:(max 1 cfg.alpha) proto;
    resolvers = Array.make routers None;
    icap;
    icount = 0;
    i_service = Array.make icap Id.zero;
    i_provider = Array.make icap Id.zero;
    i_origin = Array.make icap (-1);
    i_active = Array.make icap false;
    i_last_ms = Array.make icap neg_infinity;
    i_offset_ms = Array.make icap 0.0;
    i_slot = Array.make icap (-1);
    i_gen = Array.make icap 0;
    i_snext = Array.make icap (-1);
    ihead = Hashtbl.create (max 16 (2 * hint));
    rcap = 0;
    r_hit = [||];
    r_pos = [||];
    r_ok = [||];
    r_stale = [||];
    r_lat = [||];
    m_idx = [||];
    pbuf = Array.make 8 Id.zero;
    h_pub_msg = Metrics.handle metrics "svc-publish-msg";
    h_res_msg = Metrics.handle metrics "svc-resolve-msg";
    h_republish = Metrics.handle metrics "svc-republish";
    h_expired = Metrics.handle metrics "svc-expired";
    h_stale = Metrics.handle metrics "svc-stale-answer";
    last_sweep_ms = neg_infinity;
  }

let proto t = t.proto
let config t = t.cfg
let metrics t = t.metrics
let store t = t.store

let resolver_for t router =
  match t.resolvers.(router) with
  | Some r -> r
  | None ->
    let r = Resolver.create ~metrics:t.metrics ~router t.cfg.cache in
    t.resolvers.(router) <- Some r;
    r

let iter_resolvers t f =
  Array.iter (function Some r -> f r | None -> ()) t.resolvers

let served_expired_total t =
  let n = ref 0 in
  iter_resolvers t (fun r -> n := !n + Resolver.served_expired r);
  !n

(* ---- intents -------------------------------------------------------------- *)

let grow_intents t =
  let old = t.icap in
  let cap = 2 * old in
  let extend_id a = Array.append a (Array.make old Id.zero) in
  let extend_int fill a = Array.append a (Array.make old fill) in
  t.i_service <- extend_id t.i_service;
  t.i_provider <- extend_id t.i_provider;
  t.i_origin <- extend_int (-1) t.i_origin;
  t.i_active <- Array.append t.i_active (Array.make old false);
  t.i_last_ms <- Array.append t.i_last_ms (Array.make old neg_infinity);
  t.i_offset_ms <- Array.append t.i_offset_ms (Array.make old 0.0);
  t.i_slot <- extend_int (-1) t.i_slot;
  t.i_gen <- extend_int 0 t.i_gen;
  t.i_snext <- extend_int (-1) t.i_snext;
  t.icap <- cap

let find_intent t ~service ~provider =
  let rec walk k =
    if k < 0 then -1
    else if Id.equal t.i_provider.(k) provider then k
    else walk t.i_snext.(k)
  in
  match Hashtbl.find_opt t.ihead service with None -> -1 | Some h -> walk h

(* The stagger phase is keyed by the intent's content, not its registration
   order: shrinking a campaign trace must not rephase every other intent. *)
let stagger_of t ~service ~provider =
  let h = Hashtbl.hash (Id.hash service, Id.hash provider, 0x0c4a7) in
  t.cfg.republish_period_ms *. float_of_int (h land 0xffff) /. 65536.0

let register t ~service ~provider ~origin =
  let k = find_intent t ~service ~provider in
  if k >= 0 then begin
    t.i_origin.(k) <- origin;
    if not t.i_active.(k) then begin
      t.i_active.(k) <- true;
      (* re-activation republishes promptly, like a fresh registration *)
      t.i_last_ms.(k) <- neg_infinity
    end;
    k
  end
  else begin
    if t.icount >= t.icap then grow_intents t;
    let k = t.icount in
    t.icount <- k + 1;
    t.i_service.(k) <- service;
    t.i_provider.(k) <- provider;
    t.i_origin.(k) <- origin;
    t.i_active.(k) <- true;
    t.i_last_ms.(k) <- neg_infinity;
    t.i_offset_ms.(k) <- stagger_of t ~service ~provider;
    t.i_slot.(k) <- -1;
    t.i_gen.(k) <- 0;
    let h = match Hashtbl.find_opt t.ihead service with Some h -> h | None -> -1 in
    t.i_snext.(k) <- h;
    Hashtbl.replace t.ihead service k;
    k
  end

let unregister t ~service ~provider =
  let k = find_intent t ~service ~provider in
  if k < 0 || not t.i_active.(k) then false
  else begin
    (* The placed copies are NOT withdrawn: they decay by TTL, which is the
       staleness window the campaign measures against the oracle. *)
    t.i_active.(k) <- false;
    true
  end

let intent_count t = t.icount
let intent_active t k = t.i_active.(k)
let intent_service t k = t.i_service.(k)
let intent_provider t k = t.i_provider.(k)
let intent_origin t k = t.i_origin.(k)
let intent_last_ms t k = t.i_last_ms.(k)

let intent_placement t k =
  let s = t.i_slot.(k) in
  if s >= 0 && Provider_store.gen t.store s = t.i_gen.(k)
     && Provider_store.owner t.store s >= 0
  then s
  else -1

let intents_active t =
  let n = ref 0 in
  for k = 0 to t.icount - 1 do
    if t.i_active.(k) then incr n
  done;
  !n

let provider_active t ~service ~provider =
  let k = find_intent t ~service ~provider in
  k >= 0 && t.i_active.(k)

let true_provider_count t ~service =
  let rec walk k n =
    if k < 0 then n else walk t.i_snext.(k) (if t.i_active.(k) then n + 1 else n)
  in
  match Hashtbl.find_opt t.ihead service with None -> 0 | Some h -> walk h 0

(* ---- periodic work (call from campaign global events) --------------------- *)

let ensure_midx t n =
  if Array.length t.m_idx < n then
    t.m_idx <- Array.make (max n (2 * max 1 (Array.length t.m_idx))) 0

(* Publish every intent the predicate selects: one fused batch walk from
   each origin toward its service identifier, then records placed at the
   router each walk's verdict landed on.  The publish message is charged
   one-way (origin -> owner) in link traversals priced by the walk. *)
let publish_matching t ~now pred =
  Proto_batch.clear t.pb;
  ensure_midx t t.icount;
  let staged = ref 0 in
  for k = 0 to t.icount - 1 do
    if t.i_active.(k) && pred k then begin
      let j =
        Proto_batch.stage t.pb ~from:t.i_origin.(k) ~target:t.i_service.(k)
      in
      t.m_idx.(j) <- k;
      incr staged
    end
  done;
  if !staged > 0 then begin
    Proto_batch.run t.pb;
    for j = 0 to Proto_batch.length t.pb - 1 do
      let k = t.m_idx.(j) in
      if Proto_batch.resolved t.pb j then begin
        let owner = Proto_batch.owner_router t.pb j in
        let slot =
          match
            Provider_store.publish t.store ~service:t.i_service.(k)
              ~provider:t.i_provider.(k) ~origin:t.i_origin.(k) ~owner ~now
              ~ttl_ms:t.cfg.ttl_ms
          with
          | `Placed s | `Refreshed s -> s
        in
        t.i_slot.(k) <- slot;
        t.i_gen.(k) <- Provider_store.gen t.store slot;
        t.i_last_ms.(k) <-
          (if t.i_last_ms.(k) = neg_infinity then now -. t.i_offset_ms.(k)
           else now);
        t.h_pub_msg := !(t.h_pub_msg) + Proto_batch.link_hops t.pb j;
        incr t.h_republish
      end
      (* an unresolved walk (empty ring) leaves the intent due: retried on
         the next round *)
    done
  end;
  !staged

let republish_due t ~now =
  let period = t.cfg.republish_period_ms in
  publish_matching t ~now (fun k -> now -. t.i_last_ms.(k) >= period)

let republish_all t ~now = publish_matching t ~now (fun _ -> true)

let sweep t ~now =
  t.last_sweep_ms <- now;
  let dropped = Provider_store.sweep t.store ~now in
  t.h_expired := !(t.h_expired) + dropped;
  dropped

let last_sweep_ms t = t.last_sweep_ms

(* ---- batched resolution --------------------------------------------------- *)

let ensure_registers t n =
  if t.rcap < n then begin
    let cap = max n (2 * max 1 t.rcap) in
    t.r_hit <- Array.make cap false;
    t.r_pos <- Array.make cap false;
    t.r_ok <- Array.make cap false;
    t.r_stale <- Array.make cap false;
    t.r_lat <- Array.make cap 0.0;
    ensure_midx t cap;
    t.rcap <- cap
  end

let ensure_pbuf t n =
  if Array.length t.pbuf < n then t.pbuf <- Array.make (max n (2 * Array.length t.pbuf)) Id.zero

(* Answer quality against the oracle (the active intent set):
   - [ok]: the answer has the right sign — providers were returned iff the
     service currently has an active provider.
   - [stale]: the answer contains decayed data — a served provider that is
     no longer active, a negative answer for a live service, or providers
     for a dead one.  (An answer merely *missing* a newly-registered
     provider is not counted: it is incomplete, not wrong.) *)
let judge t ~service ~(served : Id.t array) =
  let truth = true_provider_count t ~service in
  let nserved = Array.length served in
  if nserved = 0 then
    if truth = 0 then (true, false) else (false, true)
  else begin
    let dead = ref false in
    for i = 0 to nserved - 1 do
      if not (provider_active t ~service ~provider:served.(i)) then dead := true
    done;
    if truth = 0 then (false, true) else (true, !dead)
  end

(* Misses ride the α-parallel register file when [cfg.alpha > 1] (the
   winning branch prices latency; losing-branch hops are billed to
   [svc-resolve-msg] too — redundancy is real traffic) and the plain
   sequential batch walk otherwise, keeping α=1 campaigns byte-identical
   to the pre-α engine. *)
let resolve_batch t ~now ~n ~(from : int array) ~(services : Id.t array) =
  if Array.length from < n || Array.length services < n then
    invalid_arg "Directory.resolve_batch: input arrays shorter than batch";
  ensure_registers t n;
  let use_alpha = t.cfg.alpha > 1 in
  if use_alpha then Alpha.clear t.ab else Proto_batch.clear t.pb;
  let misses = ref 0 in
  for i = 0 to n - 1 do
    let rv = resolver_for t from.(i) in
    match Resolver.find rv ~now services.(i) with
    | Some e ->
      t.r_hit.(i) <- true;
      t.r_pos.(i) <- Array.length e.Resolver.providers > 0;
      t.r_lat.(i) <- 0.0;
      let ok, stale = judge t ~service:services.(i) ~served:e.Resolver.providers in
      t.r_ok.(i) <- ok;
      t.r_stale.(i) <- stale;
      if stale then incr t.h_stale
    | None ->
      t.r_hit.(i) <- false;
      let j =
        if use_alpha then Alpha.stage t.ab ~from:from.(i) ~target:services.(i)
        else Proto_batch.stage t.pb ~from:from.(i) ~target:services.(i)
      in
      t.m_idx.(j) <- i;
      incr misses
  done;
  if !misses > 0 then begin
    let blen =
      if use_alpha then begin
        Alpha.run t.ab;
        Alpha.length t.ab
      end
      else begin
        Proto_batch.run t.pb;
        Proto_batch.length t.pb
      end
    in
    let resolved j =
      if use_alpha then Alpha.resolved t.ab j else Proto_batch.resolved t.pb j
    and owner_router j =
      if use_alpha then Alpha.owner_router t.ab j
      else Proto_batch.owner_router t.pb j
    and latency_ms j =
      if use_alpha then Alpha.latency_ms t.ab j else Proto_batch.latency_ms t.pb j
    and link_hops j =
      if use_alpha then Alpha.link_hops t.ab j + Alpha.wasted_link_hops t.ab j
      else Proto_batch.link_hops t.pb j
    in
    for j = 0 to blen - 1 do
      let i = t.m_idx.(j) in
      let service = services.(i) in
      if resolved j then begin
        let owner = owner_router j in
        ensure_pbuf t (Provider_store.service_records t.store service);
        let cnt =
          Provider_store.providers_at_into t.store ~service ~at:owner ~now t.pbuf
        in
        let answer = Array.sub t.pbuf 0 cnt in
        Resolver.install (resolver_for t from.(i)) ~now service answer;
        t.r_pos.(i) <- cnt > 0;
        t.r_lat.(i) <-
          latency_ms j +. Proto.latency_between t.proto owner from.(i);
        t.h_res_msg :=
          !(t.h_res_msg) + link_hops j
          + Proto.link_hops_between t.proto owner from.(i);
        let ok, stale = judge t ~service ~served:answer in
        t.r_ok.(i) <- ok;
        t.r_stale.(i) <- stale;
        if stale then incr t.h_stale
      end
      else begin
        (* walk found no owner (empty ring): the query burned its one-way
           cost and nothing was learned *)
        t.r_pos.(i) <- false;
        t.r_ok.(i) <- false;
        t.r_stale.(i) <- false;
        t.r_lat.(i) <- latency_ms j;
        t.h_res_msg := !(t.h_res_msg) + link_hops j
      end
    done
  end

let resolve_wasted_hops t = Alpha.total_wasted_hops t.ab

let resolve_cancellations t = Alpha.total_cancellations t.ab

let res_hit t i = t.r_hit.(i)
let res_positive t i = t.r_pos.(i)
let res_ok t i = t.r_ok.(i)
let res_stale t i = t.r_stale.(i)
let res_latency_ms t i = t.r_lat.(i)

module Id = Rofl_idspace.Id

(* Struct-of-arrays provider-record storage.

   The service layer keeps one record per placed (service, provider) copy:
   which router hosts it, who published it, when it expires.  Exactly like
   the proto resident store, every field is a column in a flat array and a
   record is one slot index — tens of bytes per record, no per-record
   boxing.  Records of one hosting router form a doubly-linked chain so
   per-node iteration (the doctor's residency sweep) does not scan the whole
   store, and records of one service form a second chain hanging off a
   Hashtbl sized from the caller's load hint, so a resolver read touches
   only that service's copies.

   Slots are recycled through a freelist threaded over [r_next].  A slot
   index is only stable while the record is alive; callers that park one
   across simulated time (the directory's intent -> placement pointers) must
   revalidate through [gen]. *)

type t = {
  mutable cap : int;
  mutable service : Id.t array;
  mutable provider : Id.t array;
  mutable origin : int array;      (* publishing router *)
  mutable owner : int array;       (* hosting router, -1 = free slot *)
  mutable placed_ms : float array; (* last publish/refresh time *)
  mutable expires_ms : float array;
  mutable version : int array;     (* bumped on every refresh *)
  mutable gen : int array;         (* bumped on every alloc: slot-handle epoch *)
  mutable r_next : int array;      (* router chain next, or freelist next when free *)
  mutable r_prev : int array;
  mutable s_next : int array;      (* service chain next *)
  mutable s_prev : int array;
  rhead : int array;               (* per-router chain head, -1 = empty *)
  shead : (Id.t, int) Hashtbl.t;   (* service -> chain head slot *)
  mutable free : int;
  mutable live : int;
}

let create ~routers ~hint () =
  if routers < 1 then invalid_arg "Provider_store.create: routers must be >= 1";
  let cap = max 16 hint in
  {
    cap;
    service = Array.make cap Id.zero;
    provider = Array.make cap Id.zero;
    origin = Array.make cap (-1);
    owner = Array.make cap (-1);
    placed_ms = Array.make cap 0.0;
    expires_ms = Array.make cap 0.0;
    version = Array.make cap 0;
    gen = Array.make cap 0;
    r_next = Array.init cap (fun i -> if i + 1 < cap then i + 1 else -1);
    r_prev = Array.make cap (-1);
    s_next = Array.make cap (-1);
    s_prev = Array.make cap (-1);
    rhead = Array.make routers (-1);
    shead = Hashtbl.create (max 16 (2 * hint));
    free = 0;
    live = 0;
  }

let live t = t.live

let capacity t = t.cap

let grow t =
  let old = t.cap in
  let cap = 2 * old in
  let extend_id a = Array.append a (Array.make old Id.zero) in
  let extend_int fill a = Array.append a (Array.make old fill) in
  t.service <- extend_id t.service;
  t.provider <- extend_id t.provider;
  t.origin <- extend_int (-1) t.origin;
  t.owner <- extend_int (-1) t.owner;
  t.placed_ms <- Array.append t.placed_ms (Array.make old 0.0);
  t.expires_ms <- Array.append t.expires_ms (Array.make old 0.0);
  t.version <- extend_int 0 t.version;
  t.gen <- extend_int 0 t.gen;
  t.r_next <- Array.append t.r_next (Array.init old (fun i ->
      if old + i + 1 < cap then old + i + 1 else -1));
  t.r_prev <- extend_int (-1) t.r_prev;
  t.s_next <- extend_int (-1) t.s_next;
  t.s_prev <- extend_int (-1) t.s_prev;
  t.cap <- cap;
  t.free <- old

let find t ~service ~provider ~owner =
  let rec walk s =
    if s < 0 then -1
    else if t.owner.(s) = owner && Id.equal t.provider.(s) provider then s
    else walk t.s_next.(s)
  in
  match Hashtbl.find_opt t.shead service with
  | None -> -1
  | Some h ->
    (* every slot in the chain already matches [service] *)
    walk h

let alloc t ~service ~provider ~origin ~owner ~now ~ttl_ms =
  if t.free < 0 then grow t;
  let s = t.free in
  t.free <- t.r_next.(s);
  t.service.(s) <- service;
  t.provider.(s) <- provider;
  t.origin.(s) <- origin;
  t.owner.(s) <- owner;
  t.placed_ms.(s) <- now;
  t.expires_ms.(s) <- now +. ttl_ms;
  t.version.(s) <- 0;
  t.gen.(s) <- t.gen.(s) + 1;
  let rh = t.rhead.(owner) in
  t.r_next.(s) <- rh;
  t.r_prev.(s) <- -1;
  if rh >= 0 then t.r_prev.(rh) <- s;
  t.rhead.(owner) <- s;
  let sh = match Hashtbl.find_opt t.shead service with Some h -> h | None -> -1 in
  t.s_next.(s) <- sh;
  t.s_prev.(s) <- -1;
  if sh >= 0 then t.s_prev.(sh) <- s;
  Hashtbl.replace t.shead service s;
  t.live <- t.live + 1;
  s

let publish t ~service ~provider ~origin ~owner ~now ~ttl_ms =
  let s = find t ~service ~provider ~owner in
  if s >= 0 then begin
    t.origin.(s) <- origin;
    t.placed_ms.(s) <- now;
    t.expires_ms.(s) <- now +. ttl_ms;
    t.version.(s) <- t.version.(s) + 1;
    `Refreshed s
  end
  else `Placed (alloc t ~service ~provider ~origin ~owner ~now ~ttl_ms)

let remove t s =
  let owner = t.owner.(s) in
  if owner < 0 then invalid_arg "Provider_store.remove: slot is already free";
  let nx = t.r_next.(s) and pv = t.r_prev.(s) in
  if pv >= 0 then t.r_next.(pv) <- nx else t.rhead.(owner) <- nx;
  if nx >= 0 then t.r_prev.(nx) <- pv;
  let snx = t.s_next.(s) and spv = t.s_prev.(s) in
  if spv >= 0 then t.s_next.(spv) <- snx
  else if snx >= 0 then Hashtbl.replace t.shead t.service.(s) snx
  else Hashtbl.remove t.shead t.service.(s);
  if snx >= 0 then t.s_prev.(snx) <- spv;
  t.owner.(s) <- -1;
  t.service.(s) <- Id.zero;
  t.provider.(s) <- Id.zero;
  t.origin.(s) <- -1;
  t.r_next.(s) <- t.free;
  t.r_prev.(s) <- -1;
  t.s_next.(s) <- -1;
  t.s_prev.(s) <- -1;
  t.free <- s;
  t.live <- t.live - 1

let expired t ~now s = t.expires_ms.(s) < now

let sweep t ~now =
  let dropped = ref 0 in
  for s = 0 to t.cap - 1 do
    if t.owner.(s) >= 0 && t.expires_ms.(s) < now then begin
      remove t s;
      incr dropped
    end
  done;
  !dropped

let service t s = t.service.(s)
let provider t s = t.provider.(s)
let origin t s = t.origin.(s)
let owner t s = t.owner.(s)
let placed_ms t s = t.placed_ms.(s)
let expires_ms t s = t.expires_ms.(s)
let version t s = t.version.(s)
let gen t s = t.gen.(s)

let iter_router t router f =
  let s = ref t.rhead.(router) in
  while !s >= 0 do
    let nx = t.r_next.(!s) in
    f !s;
    s := nx
  done

let iter_service t service f =
  match Hashtbl.find_opt t.shead service with
  | None -> ()
  | Some h ->
    let s = ref h in
    while !s >= 0 do
      let nx = t.s_next.(!s) in
      f !s;
      s := nx
    done

let iter t f =
  for s = 0 to t.cap - 1 do
    if t.owner.(s) >= 0 then f s
  done

let service_records t service =
  let n = ref 0 in
  iter_service t service (fun _ -> incr n);
  !n

(* Distinct live providers recorded for [service] at hosting router [at],
   written into [buf] (which must be long enough — size it from
   {!service_records}).  Copies that expired before [now] are skipped even
   when a lazy sweep has not dropped them yet; duplicates (the same provider
   lingering at an old owner do not arise here since we filter by [at], but
   refresh races can leave two copies at one router) are collapsed with a
   linear scan over what is already written — provider fan-in per service is
   small by construction. *)
let providers_at_into t ~service ~at ~now buf =
  let n = ref 0 in
  iter_service t service (fun s ->
      if t.owner.(s) = at && not (expired t ~now s) then begin
        let p = t.provider.(s) in
        let dup = ref false in
        for k = 0 to !n - 1 do
          if Id.equal buf.(k) p then dup := true
        done;
        if not !dup then begin
          if !n >= Array.length buf then
            invalid_arg "Provider_store.providers_at_into: buffer too short";
          buf.(!n) <- p;
          incr n
        end
      end);
  !n

(** Struct-of-arrays storage for placed provider records.

    One record per placed (service, provider) copy: the flat service
    identifier, the provider host identifier, the publishing (origin)
    router, the hosting (owner) router, and its TTL window.  Same layout
    discipline as the proto resident store: every field is a flat column, a
    record is a slot index, slots recycle through a freelist, and the
    per-service index Hashtbl is sized from the caller's load hint.  Records
    chain twice — per hosting router (doctor residency sweeps) and per
    service (resolver reads) — so neither access path scans the store.

    A slot index is stable only while the record is alive; callers that park
    one across simulated time must revalidate it through {!gen}. *)

type t

val create : routers:int -> hint:int -> unit -> t
(** [hint] pre-sizes the columns and the service index for the expected
    record population (Little's law: active intents, i.e. services x
    providers per service); both grow regardless. *)

val live : t -> int
val capacity : t -> int

val publish :
  t ->
  service:Rofl_idspace.Id.t ->
  provider:Rofl_idspace.Id.t ->
  origin:int ->
  owner:int ->
  now:float ->
  ttl_ms:float ->
  [ `Placed of int | `Refreshed of int ]
(** Upsert the copy of (service, provider) hosted at [owner]: refresh its
    TTL window and bump its version when present, place a fresh record
    otherwise.  A copy of the same pair at a {e different} owner is left
    alone — after an ownership change the old copy decays by TTL, which is
    exactly the staleness the campaign measures. *)

val remove : t -> int -> unit

val find :
  t ->
  service:Rofl_idspace.Id.t ->
  provider:Rofl_idspace.Id.t ->
  owner:int ->
  int
(** Slot of the copy hosted at [owner], or [-1]. *)

val expired : t -> now:float -> int -> bool

val sweep : t -> now:float -> int
(** Drop every record whose TTL window closed before [now]; returns the
    count dropped. *)

val providers_at_into :
  t -> service:Rofl_idspace.Id.t -> at:int -> now:float -> Rofl_idspace.Id.t array -> int
(** Distinct unexpired providers recorded for [service] at hosting router
    [at], written into the scratch buffer; returns the count.  The buffer
    must hold at least {!service_records} entries.  Allocation-free. *)

val service_records : t -> Rofl_idspace.Id.t -> int
(** Number of live copies (all owners) recorded for a service. *)

(** {2 Column accessors} *)

val service : t -> int -> Rofl_idspace.Id.t
val provider : t -> int -> Rofl_idspace.Id.t
val origin : t -> int -> int
val owner : t -> int -> int
val placed_ms : t -> int -> float
val expires_ms : t -> int -> float
val version : t -> int -> int

val gen : t -> int -> int
(** Slot-handle epoch: bumped on every allocation of the slot.  A parked
    [(slot, gen)] pair is valid iff the stored gen still matches. *)

val iter : t -> (int -> unit) -> unit
val iter_router : t -> int -> (int -> unit) -> unit
val iter_service : t -> Rofl_idspace.Id.t -> (int -> unit) -> unit

(** Bounded LRU response cache at a resolver router, with negative entries.

    A resolver absorbs repeat queries locally: positive entries hold the
    provider set the ring owner answered with, negative entries remember
    that the owner had no record (negative caching, so flash crowds on dead
    names do not hammer the owner).  Entries decay by simulated time; a
    decayed entry is a miss and is dropped on sight unless the
    [serve_stale] fault knob deliberately keeps serving it — the
    fault-injection path for the doctor's "no expired record served past
    its stale-grace window" invariant.

    Hit/miss/negative/eviction counters are interned {!Rofl_netsim.Metrics}
    handles on the directory's shared accounting: bench rows and campaign
    SLOs read the same cells. *)

type config = {
  capacity : int;          (** bound on cached services; 0 disables caching *)
  cache_ttl_ms : float;    (** freshness window of a positive answer *)
  neg_ttl_ms : float;      (** freshness window of a negative answer *)
  stale_grace_ms : float;  (** serving past fresh+grace violates the audit *)
  serve_stale : bool;      (** fault injection: keep serving decayed entries *)
}

val default_config : config
(** 1024 entries, 2 s positive / 1 s negative freshness, 1 s grace, fault
    knob off. *)

type entry = {
  providers : Rofl_idspace.Id.t array;  (** [[||]] = negative entry *)
  installed_ms : float;
  fresh_until_ms : float;
}

type t

val create : metrics:Rofl_netsim.Metrics.t -> router:int -> config -> t

val router : t -> int
val config : t -> config
val length : t -> int

val find : t -> now:float -> Rofl_idspace.Id.t -> entry option
(** Consult the cache: a fresh entry is a (positive or negative) hit and is
    promoted; a decayed entry is dropped and counted as a miss — or, with
    [serve_stale], served anyway and counted toward {!served_expired} once
    past the grace window. *)

val install : t -> now:float -> Rofl_idspace.Id.t -> Rofl_idspace.Id.t array -> unit
(** Cache an owner's answer ([[||]] installs a negative entry with the
    negative TTL); evicts the least-recently-used binding when full. *)

val served_expired : t -> int
(** Positive or negative answers served from entries decayed past the grace
    window — must be 0 unless the fault knob is on; audited by the
    doctor. *)

val iter : t -> (Rofl_idspace.Id.t -> entry -> unit) -> unit
val clear : t -> unit

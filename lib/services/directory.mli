(** The service-discovery directory over one actor network.

    Name→service resolution is a native workload of routing on flat labels:
    a service is a flat identifier, its provider records live at the ring
    owner of that identifier, and looking one up IS a data-plane owner walk.
    This module ties the three layers together:

    - {e intents} — the authoritative (service, provider, origin) rows an
      origin keeps republishing while active; also the instrumentation
      oracle stale-answer SLOs compare against;
    - {e placed records} — the {!Provider_store} copies at ring owners,
      placed through the batched data plane
      ({!Rofl_dataplane.Proto_batch}), refreshed each republish period and
      decaying by TTL;
    - {e resolver caches} — one bounded LRU {!Resolver} per querying
      router, with negative entries.

    All mutation happens from campaign global events (every shard parked),
    so one directory is deterministic at any [--shards]/[--jobs]: intents
    are processed in index order and batches in staging order.

    Timing discipline: [ttl_ms > republish_period_ms] (default 2.5x) so a
    steadily-republished record never expires; after an ownership change
    the next republish re-places at the new owner and the old copy decays —
    the residency invariant the doctor audits. *)

type config = {
  ttl_ms : float;               (** record TTL granted by each publish *)
  republish_period_ms : float;  (** origin republish cadence *)
  alpha : int;                  (** parallel walk branches per resolve miss;
                                    1 = the sequential pre-α engine *)
  cache : Resolver.config;
}

val default_config : config
(** 10 s TTL, 4 s republish period, α = 1,
    {!Resolver.default_config} caches. *)

type t

val create : proto:Rofl_proto.Proto.t -> routers:int -> hint:int -> config -> t
(** [hint] is the Little's-law load hint — the expected record population
    (active intents) — and pre-sizes the provider store, the intent index,
    and the batch registers; everything grows regardless. *)

val proto : t -> Rofl_proto.Proto.t
val config : t -> config
val store : t -> Provider_store.t

val metrics : t -> Rofl_netsim.Metrics.t
(** Shared accounting: cache hit/miss/negative/eviction cells (interned by
    the resolvers), [svc-publish-msg]/[svc-resolve-msg] link traversals,
    [svc-republish] operations, [svc-expired] TTL drops and
    [svc-stale-answer] oracle disagreements. *)

(** {2 Intents (the publication set)} *)

val register :
  t -> service:Rofl_idspace.Id.t -> provider:Rofl_idspace.Id.t -> origin:int -> int
(** Add (or re-activate) an intent; it publishes on the next
    {!republish_due} call and then every republish period, phase-staggered
    by a content-derived offset so steady state is not a thundering herd.
    Returns the intent index. *)

val unregister : t -> service:Rofl_idspace.Id.t -> provider:Rofl_idspace.Id.t -> bool
(** Deactivate an intent.  Placed copies are {e not} withdrawn — they decay
    by TTL, the staleness the campaign measures. *)

val intent_count : t -> int
val intents_active : t -> int
val intent_active : t -> int -> bool
val intent_service : t -> int -> Rofl_idspace.Id.t
val intent_provider : t -> int -> Rofl_idspace.Id.t
val intent_origin : t -> int -> int
val intent_last_ms : t -> int -> float

val intent_placement : t -> int -> int
(** Store slot of the intent's current placed copy, revalidated through the
    store's slot generation; [-1] when never placed or already expired. *)

val provider_active :
  t -> service:Rofl_idspace.Id.t -> provider:Rofl_idspace.Id.t -> bool

val true_provider_count : t -> service:Rofl_idspace.Id.t -> int
(** Oracle: active providers registered for the service right now. *)

(** {2 Periodic work (call from campaign global events)} *)

val republish_due : t -> now:float -> int
(** Republish every active intent whose period elapsed: one fused batch
    walk from the origins toward their service identifiers, records placed
    where each verdict landed.  Returns the number of publishes staged. *)

val republish_all : t -> now:float -> int
(** The republish storm: every active intent publishes right now,
    regardless of phase. *)

val sweep : t -> now:float -> int
(** Drop TTL-expired records; returns the count (also charged to
    [svc-expired]). *)

val last_sweep_ms : t -> float

(** {2 Batched resolution} *)

val resolve_batch :
  t -> now:float -> n:int -> from:int array -> services:Rofl_idspace.Id.t array -> unit
(** Resolve [services.(i)] from router [from.(i)] for [i < n]: cache hits
    answer locally at zero latency; misses ride one fused
    [Proto.lookup_owner_batch] walk to their ring owners, read the provider
    records there, and install (positive or negative) cache entries.  Miss
    latency is the walk's priced latency plus the shortest-path response
    leg.  With [config.alpha > 1] the misses ride the α-parallel register
    file ({!Rofl_dataplane.Alpha}) instead: the winning branch prices the
    latency, and losing-branch link traversals are billed to
    [svc-resolve-msg] on top — redundancy is real traffic.  Read the
    per-lookup verdicts with the accessors below before the next batch
    reuses the registers. *)

val resolve_wasted_hops : t -> int
(** Cumulative ring hops burned by losing α-branches of resolve misses
    (0 when [config.alpha = 1]). *)

val resolve_cancellations : t -> int
(** Cumulative cooperative cancellations issued by resolve misses. *)

val resolver_for : t -> int -> Resolver.t
val iter_resolvers : t -> (Resolver.t -> unit) -> unit

val served_expired_total : t -> int
(** Sum of {!Resolver.served_expired} over all resolver caches — the
    doctor's no-expired-answer invariant reads this. *)

val res_hit : t -> int -> bool
val res_positive : t -> int -> bool
val res_ok : t -> int -> bool
val res_stale : t -> int -> bool
val res_latency_ms : t -> int -> float

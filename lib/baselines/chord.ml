module Id = Rofl_idspace.Id
module Ring = Rofl_idspace.Ring

type node = {
  nid : Id.t;
  mutable succs : Id.t list;
  mutable fingers : Id.t array; (* finger i targets nid + 2^(127-i) *)
}

type t = {
  succ_group : int;
  finger_rows : int;
  mutable ring : node Ring.t;
}

let create ~succ_group ~finger_rows =
  if succ_group < 1 then invalid_arg "Chord.create: succ_group >= 1";
  if finger_rows < 0 || finger_rows > 128 then invalid_arg "Chord.create: finger_rows in [0,128]";
  { succ_group; finger_rows; ring = Ring.empty }

let size t = Ring.cardinal t.ring

let members t = List.map fst (Ring.to_list t.ring)

let jump k =
  (* 2^(127-k) as an Id. *)
  if k < 64 then Id.of_int64_pair (Int64.shift_left 1L (63 - k)) 0L
  else Id.of_int64_pair 0L (Int64.shift_left 1L (127 - k))

let refresh_node t node =
  node.succs <- List.map fst (Ring.k_successors t.succ_group node.nid t.ring);
  node.fingers <-
    Array.init t.finger_rows (fun k ->
        let target = Id.add node.nid (jump k) in
        match Ring.successor_incl target t.ring with
        | Some (fid, _) -> fid
        | None -> node.nid)

let refresh_fingers t = Ring.iter (fun _ node -> refresh_node t node) t.ring

let join t id =
  if Ring.mem id t.ring then Error "duplicate identifier"
  else begin
    let node = { nid = id; succs = []; fingers = [||] } in
    t.ring <- Ring.add id node t.ring;
    refresh_node t node;
    (* Predecessor and nearby nodes refresh (stabilisation shortcut). *)
    (match Ring.predecessor id t.ring with
     | Some (_, p) -> refresh_node t p
     | None -> ());
    Ok ()
  end

let leave t id =
  t.ring <- Ring.remove id t.ring;
  (match Ring.predecessor id t.ring with
   | Some (_, p) -> refresh_node t p
   | None -> ())

type lookup = { owner : Id.t; hops : int; path : Id.t list }

(* The owner of key k is the first member at or after k. *)
let owner_of t key =
  match Ring.successor_incl key t.ring with
  | Some (oid, _) -> oid
  | None -> invalid_arg "Chord.owner_of: empty ring"

let lookup t ~from key =
  match Ring.find from t.ring with
  | None -> Error "lookup source is not a member"
  | Some _ when Ring.is_empty t.ring -> Error "empty ring"
  | Some start ->
    let owner = owner_of t key in
    let rec walk (node : node) hops path =
      if hops > 4 * 128 + Ring.cardinal t.ring then Error "lookup did not converge"
      else if Id.equal node.nid owner then
        Ok { owner; hops; path = List.rev (node.nid :: path) }
      else begin
        (* If the key lies between us and our successor, the successor owns
           it; otherwise take the closest preceding finger. *)
        let next =
          match node.succs with
          | s :: _ when Id.between_incl node.nid key s -> Some s
          | _ ->
            let best = ref None in
            Array.iter
              (fun f ->
                if Id.between node.nid f key then begin
                  match !best with
                  | Some b when not (Id.closer_clockwise ~target:key f b) -> ()
                  | Some _ | None -> best := Some f
                end)
              node.fingers;
            (match !best with
             | Some f -> Some f
             | None -> (match node.succs with s :: _ -> Some s | [] -> None))
        in
        match next with
        | None -> Error "no route"
        | Some nid ->
          (match Ring.find nid t.ring with
           | Some n -> walk n (hops + 1) (node.nid :: path)
           | None -> Error "dangling pointer")
      end
    in
    walk start 0 []

let check_ring t =
  match Ring.min_binding t.ring with
  | None -> true
  | Some (start, _) ->
    let n = Ring.cardinal t.ring in
    let rec walk cur steps =
      if steps = n then Id.equal cur start
      else
        match Ring.find cur t.ring with
        | Some node ->
          (match node.succs with
           | s :: _ -> walk s (steps + 1)
           | [] -> false)
        | None -> false
    in
    walk start 0

(** Binary min-heap keyed by float priority.

    Used as the event queue of the discrete-event simulator and as the
    frontier of Dijkstra's algorithm.  Ties are broken by insertion order so
    iteration is deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h prio v] inserts [v] with priority [prio]. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element (FIFO among ties).
    The vacated slot is cleared, so a popped element becomes unreachable
    through the heap as soon as the caller drops it — draining the simulator
    event queue cannot retain event closures between campaign phases. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit

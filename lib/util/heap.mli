(** Binary min-heap keyed by float priority.

    Used as the event queue of the discrete-event simulator and as the
    frontier of Dijkstra's algorithm.  Ties are broken by insertion order so
    iteration is deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h prio v] inserts [v] with priority [prio].  Ties among plain
    pushes pop in insertion order (an internal counter on the heap's
    tie-break rail [-1]). *)

val push_keyed : 'a t -> float -> rail:int -> seq:int -> 'a -> unit
(** [push_keyed h prio ~rail ~seq v] inserts [v] under the full key
    [(prio, rail, seq)].  Entries pop in lexicographic key order, so two
    heaps holding the same keyed entries drain identically no matter which
    heap each entry was pushed through or in what order — the foundation of
    the sharded engine's byte-identical merges.  Callers own the key
    discipline: within one [rail], [seq] must be strictly monotone.  Rails
    are non-negative by convention; plain {!push} uses rail [-1], so plain
    entries at a timestamp drain before keyed ones. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the minimum-priority element (FIFO among ties).
    The vacated slot is cleared, so a popped element becomes unreachable
    through the heap as soon as the caller drops it — draining the simulator
    event queue cannot retain event closures between campaign phases. *)

val pop_keyed : 'a t -> (float * int * int * 'a) option
(** Like {!pop} but also returns the entry's [(rail, seq)] label —
    [(prio, rail, seq, value)] — so the engine can fold executed-event
    fingerprints without re-deriving the key. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit

(** Fixed-size domain pool for coarse-grained fan-out.

    The experiment engine runs its independent (ISP × grid-point) work items
    across OCaml 5 domains.  The pool is deliberately simple: one shared task
    queue, [jobs - 1] worker domains parked on a condition variable, and a
    caller that drains the queue alongside the workers, so [jobs = 1] is the
    plain sequential [List.map] with no domain ever spawned.

    Determinism contract: {!map} preserves input order in its result list and
    tasks must not share mutable state (each experiment task derives its own
    {!Prng.t} from a fixed seed), so results are byte-identical to a
    sequential run regardless of [jobs]. *)

type t

val create : jobs:int -> t
(** [create ~jobs] makes a pool that runs at most [jobs] tasks concurrently
    (clamped to at least 1).  Worker domains are spawned lazily on the first
    parallel {!map}. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs], running up to
    [jobs t] applications concurrently, and returns the results in input
    order.  If any application raises, the first exception (in completion
    order) is re-raised in the caller with its backtrace after all tasks
    have finished.  Nested calls from inside a task degrade to sequential
    [List.map] rather than deadlocking the pool. *)

val shutdown : t -> unit
(** Park and join the worker domains.  The pool may not be used afterwards.
    Idempotent. *)

val worker_minor_words : unit -> int
(** Cumulative minor-heap words allocated by tasks executed on worker
    domains, across every pool in the process.  OCaml 5 GC counters are
    per-domain, so a caller measuring its own [Gc.quick_stat] delta must add
    the delta of this counter to see the allocations the workers absorbed
    (caller-drained tasks are already in the caller's own stats). *)

val worker_major_words : unit -> int
(** Same accounting for words promoted/allocated on the major heap. *)

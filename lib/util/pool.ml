(* One shared FIFO of thunks; workers park on [wake].  The caller of [map]
   drains the same queue instead of blocking, so a pool of [jobs] runs at
   most [jobs] tasks at once ([jobs - 1] workers + the calling domain). *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  wake : Condition.t; (* work arrived or shutdown requested *)
  pending : (unit -> unit) Queue.t;
  mutable alive : bool;
  mutable workers : unit Domain.t list; (* spawned on first parallel map *)
}

let create ~jobs =
  {
    jobs = max 1 jobs;
    mutex = Mutex.create ();
    wake = Condition.create ();
    pending = Queue.create ();
    alive = true;
    workers = [];
  }

let jobs t = t.jobs

(* Set while the current domain is executing a pool task (worker or caller
   drain loop): a [map] from such a context must not wait on the pool it is
   itself occupying, so it degrades to sequential. *)
let in_task : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let run_task task =
  let flag = Domain.DLS.get in_task in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := false) task

(* OCaml 5 GC counters are per-domain: a bench reading [Gc.quick_stat] on
   the main domain misses whatever share of the work the pool's workers
   claimed.  Workers therefore tally the words their tasks allocate into
   process-wide counters; caller-drained tasks are already visible in the
   calling domain's own stats. *)
let worker_minor = Atomic.make 0

let worker_major = Atomic.make 0

let worker_minor_words () = Atomic.get worker_minor

let worker_major_words () = Atomic.get worker_major

let worker t () =
  let rec loop () =
    Mutex.lock t.mutex;
    while t.alive && Queue.is_empty t.pending do
      Condition.wait t.wake t.mutex
    done;
    match Queue.take_opt t.pending with
    | Some task ->
      Mutex.unlock t.mutex;
      let s0 = Gc.quick_stat () in
      run_task task;
      let s1 = Gc.quick_stat () in
      ignore
        (Atomic.fetch_and_add worker_minor
           (int_of_float (s1.Gc.minor_words -. s0.Gc.minor_words)));
      ignore
        (Atomic.fetch_and_add worker_major
           (int_of_float (s1.Gc.major_words -. s0.Gc.major_words)));
      loop ()
    | None ->
      (* Woken for shutdown with nothing left to do. *)
      Mutex.unlock t.mutex
  in
  loop ()

let ensure_workers t =
  if t.workers = [] && t.jobs > 1 then
    t.workers <- List.init (t.jobs - 1) (fun _ -> Domain.spawn (worker t))

let shutdown t =
  Mutex.lock t.mutex;
  t.alive <- false;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let map t f xs =
  let n = List.length xs in
  if t.jobs <= 1 || n <= 1 || !(Domain.DLS.get in_task) then List.map f xs
  else begin
    if not t.alive then invalid_arg "Pool.map: pool is shut down";
    ensure_workers t;
    let input = Array.of_list xs in
    let results = Array.make n None in
    let first_error = Atomic.make None in
    let remaining = Atomic.make n in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    let run_one i =
      (try results.(i) <- Some (f input.(i))
       with e ->
         let bt = Printexc.get_raw_backtrace () in
         ignore (Atomic.compare_and_set first_error None (Some (e, bt))));
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock done_mutex;
        Condition.signal done_cond;
        Mutex.unlock done_mutex
      end
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (fun () -> run_one i) t.pending
    done;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    (* Drain alongside the workers until this map's tasks are all claimed,
       then wait for stragglers still running in workers. *)
    let rec drain () =
      Mutex.lock t.mutex;
      match Queue.take_opt t.pending with
      | Some task ->
        Mutex.unlock t.mutex;
        run_task task;
        drain ()
      | None -> Mutex.unlock t.mutex
    in
    drain ();
    Mutex.lock done_mutex;
    while Atomic.get remaining > 0 do
      Condition.wait done_cond done_mutex
    done;
    Mutex.unlock done_mutex;
    match Atomic.get first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
      Array.to_list
        (Array.map
           (function
             | Some r -> r
             | None -> assert false (* every slot ran or raised *))
           results)
  end

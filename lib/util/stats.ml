let sum xs = List.fold_left ( +. ) 0.0 xs

let mean = function
  | [] -> 0.0
  | xs -> sum xs /. float_of_int (List.length xs)

let mean_a a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let sorted_array xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a

let percentile xs p =
  if xs = [] then invalid_arg "Stats.percentile: empty sample";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = sorted_array xs in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then a.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end
  end

let median xs = if xs = [] then 0.0 else percentile xs 50.0

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty sample"
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

let cdf xs =
  let a = sorted_array xs in
  let n = Array.length a in
  if n = 0 then []
  else begin
    let total = float_of_int n in
    let points = ref [] in
    (* Walk from the end so each distinct value gets its highest rank. *)
    for i = n - 1 downto 0 do
      if i = n - 1 || a.(i) <> a.(i + 1) then
        points := (a.(i), float_of_int (i + 1) /. total) :: !points
    done;
    !points
  end

let cdf_at c x =
  let rec go acc = function
    | [] -> acc
    | (v, f) :: rest -> if v <= x then go f rest else acc
  in
  go 0.0 c

(* Invert at every fraction in one walk over the CDF: both the CDF points
   and (after sorting) the fractions are ascending, so a single cursor
   suffices instead of one O(|c|) scan per fraction.  Semantics per
   fraction are unchanged: first value whose cumulative fraction reaches
   [p], the last value if none does, 0 on an empty CDF. *)
let quantiles_of_cdf c ps =
  let n = List.length ps in
  let order = Array.init n (fun i -> i) in
  let pa = Array.of_list ps in
  Array.sort (fun a b -> compare pa.(a) pa.(b)) order;
  let out = Array.make n 0.0 in
  let rec go c idx =
    if idx < n then
      match c with
      | [] -> ()
      | [ (v, _) ] ->
        out.(order.(idx)) <- v;
        go c (idx + 1)
      | (v, f) :: rest ->
        if f >= pa.(order.(idx)) then begin
          out.(order.(idx)) <- v;
          go c (idx + 1)
        end
        else go rest idx
  in
  go c 0;
  Array.to_list out

let histogram xs ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  match xs with
  | [] -> [||]
  | _ ->
    let lo, hi = min_max xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    let index x =
      let i = int_of_float ((x -. lo) /. width) in
      if i >= bins then bins - 1 else if i < 0 then 0 else i
    in
    List.iter (fun x -> counts.(index x) <- counts.(index x) + 1) xs;
    Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts

let moving_average xs ~window =
  if window < 1 then invalid_arg "Stats.moving_average: window must be >= 1";
  let q = Queue.create () in
  let running = ref 0.0 in
  List.map
    (fun x ->
      Queue.push x q;
      running := !running +. x;
      if Queue.length q > window then running := !running -. Queue.pop q;
      !running /. float_of_int (Queue.length q))
    xs

let geometric_mean = function
  | [] -> 0.0
  | xs ->
    let logs = List.map (fun x ->
      if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive sample";
      log x) xs
    in
    exp (mean logs)

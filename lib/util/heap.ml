type 'a entry = { prio : float; rail : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

(* Slots at index >= [size] are dead storage and must not keep popped entries
   (and the arbitrarily large closures they carry) reachable between pops.
   They are filled with an immediate dummy instead of a live entry; every
   access is guarded by [size], so the dummy is never read.  [Obj.magic] is
   confined to this one definition. *)
let vacated : 'a entry = Obj.magic 0

let create () = { data = [||]; size = 0; next_seq = 0 }

let length h = h.size

let is_empty h = h.size = 0

(* Lexicographic (prio, rail, seq).  Plain [push] uses rail -1 with an
   internal counter, so pure-FIFO users keep their insertion order; keyed
   pushes carry content-derived (rail, seq) labels whose order does not
   depend on which heap instance the entry went through — the property the
   sharded engine needs for byte-identical merges. *)
let less a b =
  a.prio < b.prio
  || (a.prio = b.prio
      && (a.rail < b.rail || (a.rail = b.rail && a.seq < b.seq)))

let grow h =
  let capacity = Array.length h.data in
  if h.size = capacity then begin
    let new_capacity = if capacity = 0 then 16 else 2 * capacity in
    let data = Array.make new_capacity vacated in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.size && less h.data.(left) h.data.(!smallest) then smallest := left;
  if right < h.size && less h.data.(right) h.data.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push_entry h entry =
  grow h;
  h.data.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let push h prio value =
  let entry = { prio; rail = -1; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  push_entry h entry

let push_keyed h prio ~rail ~seq value =
  push_entry h { prio; rail; seq; value }

let pop_keyed h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      h.data.(h.size) <- vacated;
      sift_down h 0
    end
    else h.data.(0) <- vacated;
    Some (top.prio, top.rail, top.seq, top.value)
  end

let pop h =
  match pop_keyed h with
  | None -> None
  | Some (prio, _, _, value) -> Some (prio, value)

let peek h = if h.size = 0 then None else Some (h.data.(0).prio, h.data.(0).value)

let clear h =
  h.data <- [||];
  h.size <- 0

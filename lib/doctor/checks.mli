(** Point-in-time well-formedness checks with stable violation fingerprints.

    Each check inspects live simulation state and returns the list of
    violations it found; running a check schedules nothing, draws no
    randomness (except where a sampling count is explicitly requested) and
    mutates no protocol state, so the {!Audit} layer can call them from
    engine checkpoints without perturbing a deterministic campaign. *)

type violation = {
  check : string;   (** check kind, e.g. ["loopy-evidence"] *)
  subject : string; (** stable subject, e.g. the holder's short identifier *)
  detail : string;  (** human-readable specifics (not part of the fingerprint) *)
  at_ms : float;    (** simulated time of the checkpoint that caught it *)
}

val fingerprint : violation -> string
(** [check ^ ":" ^ subject] — the stable key the shrinker matches on.  The
    detail and timestamp vary as events are dropped; the kind of breakage
    and who it happened to must not. *)

val pp_violation : Format.formatter -> violation -> unit

val to_string : violation -> string

val proto_checks :
  ?stale_grace_ms:float -> at_ms:float -> Rofl_proto.Proto.t -> violation list
(** Checkpoint sweep of the async protocol state: residency-oracle/resident
    agreement (["oracle-agreement"], ["duplicate-resident"]), successor-list
    hygiene (["succ-list-self"], ["succ-list-order"], ["succ-list-dup"]),
    loopy-ring inversion evidence (["loopy-evidence"]: a backup strictly
    closer clockwise than the successor), pointer-cache capacity
    (["pcache-capacity"]), network-size-estimate sanity (["nhat-drift"]:
    on a converged ring of ≥ 64 members the median estimate must land
    within factor 4 of the membership — only the median, per-node samples
    are Erlang-noisy), and — when [stale_grace_ms] is given — stale
    successor windows open past the grace (["stale-grace"]).

    Attack-detection invariants ride the same sweep, auditing the ring's
    {e declared} policy even when enforcement is off:
    ["eclipse-saturation"] (a backup tail holding more {e admitted} entries
    of one diversity group than the declared [succ_quota] — the structural
    signature of a sybil eclipse; infrastructure entries, a router's own
    label hosted at itself, are exempt because small rings legitimately run
    same-PoP label streaks), ["poison-residency"] (a successor,
    backup, predecessor or pointer-cache entry naming an identifier that
    was never admitted to the ring — fabricated by a poisoning router),
    ["forged-admission"] (a resident admitted although its join claim
    failed identity verification — only possible with [verify_joins] off)
    and ["pcache-quota"] (a pointer cache holding more entries of one
    group than its admission quota when enforcement is on). *)

val pointer_cache_checks :
  at_ms:float -> subject:string -> Rofl_core.Pointer_cache.t -> violation list
(** LRU/ring-index agreement (["pointer-cache-agreement"]). *)

val intra_checks :
  ?routability_samples:int -> at_ms:float -> Rofl_intra.Network.t -> violation list
(** The existing {!Rofl_intra.Invariant} sweep (["intra-invariant"]), optional
    routability sampling (["intra-routability"], surfacing the inconclusive
    case as a violation), plus a pointer-cache agreement audit of every
    router.  Routability sampling draws from the network's own RNG. *)

val inter_checks :
  ?routability_samples:int -> at_ms:float -> Rofl_inter.Net.t -> violation list
(** The existing {!Rofl_inter.Interinvariant} sweep (["inter-invariant"]) and
    optional routability sampling (["inter-routability"]). *)

val services_checks :
  ?expiry_grace_ms:float -> at_ms:float -> Rofl_services.Directory.t -> violation list
(** Checkpoint sweep of the service-discovery layer: no record resident
    grace-past its TTL (["svc-expiry"]; grace defaults to two republish
    periods — a full sweep cadence plus slack), every active intent's
    current placement hosted by the ring owner of its service identifier
    whenever the ring is converged (["svc-residency"]; decaying copies at
    previous owners are exempt), and no resolver cache that served an
    answer decayed past its stale-grace window (["svc-stale-serve"] — the
    counter only moves under the serve-stale fault knob or a freshness
    bug). *)

(* Delta-debugging-lite over event lists.  [reproduces] re-runs the whole
   deterministic scenario on a candidate list and answers whether the target
   violation fingerprint still shows up; it is the only oracle used, so the
   reduction works for any event type and any failure the caller can
   re-detect. *)

let minimize ~reproduces events =
  let arr = Array.of_list events in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let prefix_repro len = reproduces (Array.to_list (Array.sub arr 0 len)) in
    (* Smallest reproducing prefix by bisection.  Violations are detected at
       checkpoints *during* the run, so extending a reproducing prefix keeps
       it reproducing (monotone) and bisection is sound; if a pathological
       scenario breaks monotonicity the result is still a reproducing
       prefix — just not the shortest — and the greedy passes below recover
       most of the difference. *)
    let len =
      if prefix_repro 0 then 0
      else begin
        let lo = ref 0 and hi = ref n in
        (* invariant: prefix !hi reproduces (the caller guarantees the full
           list does), prefix !lo does not *)
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if prefix_repro mid then hi := mid else lo := mid
        done;
        !hi
      end
    in
    (* Greedy one-at-a-time drops over the surviving prefix, newest event
       first (later events are most often incidental), repeated until a full
       pass removes nothing. *)
    let keep = Array.make (max len 1) true in
    let current () =
      let out = ref [] in
      for i = len - 1 downto 0 do
        if keep.(i) then out := arr.(i) :: !out
      done;
      !out
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = len - 1 downto 0 do
        if keep.(i) then begin
          keep.(i) <- false;
          if reproduces (current ()) then changed := true else keep.(i) <- true
        end
      done
    done;
    current ()
  end

module Shard = Rofl_netsim.Shard
module Proto = Rofl_proto.Proto

type config = {
  every_ms : float;
  stale_grace_ms : float option;
  max_recorded : int;
}

let config_for (pc : Proto.config) =
  (* Worst-case repair latency for one dead successor: the failure surfaces
     at the next stabilisation round and burns the full probe budget
     (initial attempt + every backed-off retry) before failover promotes a
     backup.  Cascading crashes can chain a few of those, so the grace is
     eight chains deep — generous enough that clean campaigns never trip it,
     tight enough that a stopped stabilizer is caught within a second or two
     of simulated time at default periods. *)
  let rpc_budget =
    let rec go i acc =
      if i > pc.Proto.rpc_retries then acc
      else go (i + 1) (acc +. (pc.Proto.rpc_timeout_ms *. (pc.Proto.rpc_backoff ** float_of_int i)))
    in
    go 0 0.0
  in
  {
    every_ms = pc.Proto.stabilize_period_ms;
    stale_grace_ms = Some (8.0 *. (pc.Proto.stabilize_period_ms +. rpc_budget));
    max_recorded = 64;
  }

type summary = {
  checkpoints : int;
  violations : Checks.violation list;
  total_violations : int;
}

let ok s = s.total_violations = 0

let first s = match s.violations with [] -> None | v :: _ -> Some v

type t = {
  cfg : config;
  proto : Proto.t;
  extra : (float -> Checks.violation list) option;
  mutable next_cp : float;
  mutable checkpoints : int;
  mutable recorded : Checks.violation list; (* newest first *)
  mutable recorded_n : int;
  mutable total : int;
}

let create ?extra cfg proto =
  if cfg.every_ms <= 0.0 then invalid_arg "Audit.create: every_ms must be positive";
  {
    cfg;
    proto;
    extra;
    next_cp = cfg.every_ms;
    checkpoints = 0;
    recorded = [];
    recorded_n = 0;
    total = 0;
  }

let checkpoint t now =
  t.checkpoints <- t.checkpoints + 1;
  let vs = Checks.proto_checks ?stale_grace_ms:t.cfg.stale_grace_ms ~at_ms:now t.proto in
  let vs = match t.extra with None -> vs | Some f -> vs @ f now in
  List.iter
    (fun v ->
      t.total <- t.total + 1;
      if t.recorded_n < t.cfg.max_recorded then begin
        t.recorded <- v :: t.recorded;
        t.recorded_n <- t.recorded_n + 1
      end)
    vs

let on_event t now =
  if now >= t.next_cp then begin
    (* One sweep per crossing, however many checkpoint boundaries this event
       jumped: state only changes when events execute, so intermediate
       checkpoints would all have observed the same snapshot. *)
    checkpoint t now;
    while t.next_cp <= now do
      t.next_cp <- t.next_cp +. t.cfg.every_ms
    done
  end

(* The auditor rides the shard coordinator's monitor: it fires at the
   K-independent sync points (global-event times and run horizons), with
   every shard parked — so checkpoints may read cross-shard state and see
   the same snapshots at any shard count. *)
let install t = Shard.set_monitor (Proto.coordinator t.proto) (on_event t)

let detach t = Shard.clear_monitor (Proto.coordinator t.proto)

let summary t =
  {
    checkpoints = t.checkpoints;
    violations = List.rev t.recorded;
    total_violations = t.total;
  }

module Churn = Rofl_workload.Churn

type fault =
  | Cross_splice of { at_ms : float }
  | Stab_off of { at_ms : float }
  | Eclipse of { at_ms : float; victim : int; count : int; crash_at_ms : float }
      (** mine [count] self-certifying sybil identifiers into the ring arc
          owned by router [victim]'s label and join them; a negative
          [crash_at_ms] means they stay, otherwise they all crash at once
          then — the coordinated-failure half of an eclipse *)
  | Poison of { at_ms : float; fraction : float }
      (** flip a content-keyed [fraction] of routers to
          [Proto.Poison_succs] conduct *)
  | Forge of { at_ms : float; count : int }
      (** submit [count] joins whose credentials belong to a different
          identifier — the forged-claim workload the verification gate
          exists to reject *)

type event = Churn of Churn.event | Fault of fault

let event_time = function
  | Churn e -> Churn.event_time e
  | Fault
      ( Cross_splice { at_ms }
      | Stab_off { at_ms }
      | Eclipse { at_ms; _ }
      | Poison { at_ms; _ }
      | Forge { at_ms; _ } ) ->
    at_ms

type t = {
  seed : int;
  graph : string;
  params : (string * string) list;
  fingerprint : string;
  events : event list;
}

let magic = "rofl-doctor-repro v1"

(* %h prints the exact bit pattern (hex float), so a written timestamp
   replays to the identical float. *)
let fl = Printf.sprintf "%h"

let event_to_line = function
  | Churn (Churn.Join { at_ms; seq }) -> Printf.sprintf "event join %s %d" (fl at_ms) seq
  | Churn (Churn.Leave { at_ms; seq }) -> Printf.sprintf "event leave %s %d" (fl at_ms) seq
  | Churn (Churn.Move { at_ms; seq }) -> Printf.sprintf "event move %s %d" (fl at_ms) seq
  | Churn (Churn.Crash { at_ms; seq }) -> Printf.sprintf "event crash %s %d" (fl at_ms) seq
  | Fault (Cross_splice { at_ms }) -> Printf.sprintf "event cross-splice %s" (fl at_ms)
  | Fault (Stab_off { at_ms }) -> Printf.sprintf "event stab-off %s" (fl at_ms)
  | Fault (Eclipse { at_ms; victim; count; crash_at_ms }) ->
    Printf.sprintf "event eclipse %s %d %d %s" (fl at_ms) victim count (fl crash_at_ms)
  | Fault (Poison { at_ms; fraction }) ->
    Printf.sprintf "event poison %s %s" (fl at_ms) (fl fraction)
  | Fault (Forge { at_ms; count }) -> Printf.sprintf "event forge %s %d" (fl at_ms) count

let to_lines a =
  (magic :: Printf.sprintf "seed %d" a.seed :: Printf.sprintf "graph %s" a.graph
   :: List.map (fun (k, v) -> Printf.sprintf "param %s %s" k v) a.params)
  @ (Printf.sprintf "fingerprint %s" a.fingerprint :: List.map event_to_line a.events)

let ( let* ) = Result.bind

let float_of_token s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "malformed float %S" s)

let int_of_token s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "malformed int %S" s)

(* Dispatch on the event kind before the operand count: kinds disagree on
   arity and on operand types (poison's second operand is a float where the
   churn kinds carry an int seq). *)
let event_of_line line =
  match String.split_on_char ' ' line with
  | "event" :: kind :: operands ->
    (match (kind, operands) with
     | ("join" | "leave" | "move" | "crash"), [ at; seq ] ->
       let* at_ms = float_of_token at in
       let* seq = int_of_token seq in
       Ok
         (Churn
            (match kind with
             | "join" -> Churn.Join { at_ms; seq }
             | "leave" -> Churn.Leave { at_ms; seq }
             | "move" -> Churn.Move { at_ms; seq }
             | _ -> Churn.Crash { at_ms; seq }))
     | "cross-splice", [ at ] ->
       let* at_ms = float_of_token at in
       Ok (Fault (Cross_splice { at_ms }))
     | "stab-off", [ at ] ->
       let* at_ms = float_of_token at in
       Ok (Fault (Stab_off { at_ms }))
     | "eclipse", [ at; victim; count; crash ] ->
       let* at_ms = float_of_token at in
       let* victim = int_of_token victim in
       let* count = int_of_token count in
       let* crash_at_ms = float_of_token crash in
       Ok (Fault (Eclipse { at_ms; victim; count; crash_at_ms }))
     | "poison", [ at; fraction ] ->
       let* at_ms = float_of_token at in
       let* fraction = float_of_token fraction in
       Ok (Fault (Poison { at_ms; fraction }))
     | "forge", [ at; count ] ->
       let* at_ms = float_of_token at in
       let* count = int_of_token count in
       Ok (Fault (Forge { at_ms; count }))
     | ( ( "join" | "leave" | "move" | "crash" | "cross-splice" | "stab-off"
         | "eclipse" | "poison" | "forge" ),
         _ ) ->
       Error (Printf.sprintf "wrong operand count for event %S" line)
     | k, _ -> Error (Printf.sprintf "unknown event kind %S" k))
  | _ -> Error (Printf.sprintf "malformed event line %S" line)

let of_lines lines =
  match lines with
  | m :: rest when String.trim m = magic ->
    let seed = ref None
    and graph = ref None
    and params = ref []
    and fingerprint = ref None
    and events = ref []
    and err = ref None in
    List.iter
      (fun line ->
        if !err = None then begin
          let line = String.trim line in
          if line <> "" then
            match String.index_opt line ' ' with
            | None -> err := Some (Printf.sprintf "malformed line %S" line)
            | Some i ->
              let key = String.sub line 0 i in
              let value = String.sub line (i + 1) (String.length line - i - 1) in
              (match key with
               | "seed" ->
                 (match int_of_token value with
                  | Ok s -> seed := Some s
                  | Error e -> err := Some e)
               | "graph" -> graph := Some value
               | "param" ->
                 (match String.index_opt value ' ' with
                  | Some j ->
                    params :=
                      ( String.sub value 0 j,
                        String.sub value (j + 1) (String.length value - j - 1) )
                      :: !params
                  | None -> err := Some (Printf.sprintf "malformed param line %S" line))
               | "fingerprint" -> fingerprint := Some value
               | "event" ->
                 (match event_of_line line with
                  | Ok ev -> events := ev :: !events
                  | Error e -> err := Some e)
               | _ -> err := Some (Printf.sprintf "unknown line key %S" key))
        end)
      rest;
    (match (!err, !seed, !graph, !fingerprint) with
     | Some e, _, _, _ -> Error e
     | None, None, _, _ -> Error "missing seed line"
     | None, _, None, _ -> Error "missing graph line"
     | None, _, _, None -> Error "missing fingerprint line"
     | None, Some seed, Some graph, Some fingerprint ->
       Ok
         {
           seed;
           graph;
           params = List.rev !params;
           fingerprint;
           events = List.rev !events;
         })
  | _ -> Error (Printf.sprintf "missing %S header" magic)

let write ~path a =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun line ->
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n')
        (to_lines a))

let read ~path =
  match In_channel.with_open_text path In_channel.input_lines with
  | lines -> of_lines lines
  | exception Sys_error e -> Error e

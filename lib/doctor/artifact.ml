module Churn = Rofl_workload.Churn

type fault = Cross_splice of { at_ms : float } | Stab_off of { at_ms : float }

type event = Churn of Churn.event | Fault of fault

let event_time = function
  | Churn e -> Churn.event_time e
  | Fault (Cross_splice { at_ms } | Stab_off { at_ms }) -> at_ms

type t = {
  seed : int;
  graph : string;
  params : (string * string) list;
  fingerprint : string;
  events : event list;
}

let magic = "rofl-doctor-repro v1"

(* %h prints the exact bit pattern (hex float), so a written timestamp
   replays to the identical float. *)
let fl = Printf.sprintf "%h"

let event_to_line = function
  | Churn (Churn.Join { at_ms; seq }) -> Printf.sprintf "event join %s %d" (fl at_ms) seq
  | Churn (Churn.Leave { at_ms; seq }) -> Printf.sprintf "event leave %s %d" (fl at_ms) seq
  | Churn (Churn.Move { at_ms; seq }) -> Printf.sprintf "event move %s %d" (fl at_ms) seq
  | Churn (Churn.Crash { at_ms; seq }) -> Printf.sprintf "event crash %s %d" (fl at_ms) seq
  | Fault (Cross_splice { at_ms }) -> Printf.sprintf "event cross-splice %s" (fl at_ms)
  | Fault (Stab_off { at_ms }) -> Printf.sprintf "event stab-off %s" (fl at_ms)

let to_lines a =
  (magic :: Printf.sprintf "seed %d" a.seed :: Printf.sprintf "graph %s" a.graph
   :: List.map (fun (k, v) -> Printf.sprintf "param %s %s" k v) a.params)
  @ (Printf.sprintf "fingerprint %s" a.fingerprint :: List.map event_to_line a.events)

let ( let* ) = Result.bind

let float_of_token s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "malformed float %S" s)

let int_of_token s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "malformed int %S" s)

let event_of_line line =
  match String.split_on_char ' ' line with
  | [ "event"; kind; at; seq ] ->
    let* at_ms = float_of_token at in
    let* seq = int_of_token seq in
    (match kind with
     | "join" -> Ok (Churn (Churn.Join { at_ms; seq }))
     | "leave" -> Ok (Churn (Churn.Leave { at_ms; seq }))
     | "move" -> Ok (Churn (Churn.Move { at_ms; seq }))
     | "crash" -> Ok (Churn (Churn.Crash { at_ms; seq }))
     | k -> Error (Printf.sprintf "unknown churn event kind %S" k))
  | [ "event"; kind; at ] ->
    let* at_ms = float_of_token at in
    (match kind with
     | "cross-splice" -> Ok (Fault (Cross_splice { at_ms }))
     | "stab-off" -> Ok (Fault (Stab_off { at_ms }))
     | k -> Error (Printf.sprintf "unknown fault kind %S" k))
  | _ -> Error (Printf.sprintf "malformed event line %S" line)

let of_lines lines =
  match lines with
  | m :: rest when String.trim m = magic ->
    let seed = ref None
    and graph = ref None
    and params = ref []
    and fingerprint = ref None
    and events = ref []
    and err = ref None in
    List.iter
      (fun line ->
        if !err = None then begin
          let line = String.trim line in
          if line <> "" then
            match String.index_opt line ' ' with
            | None -> err := Some (Printf.sprintf "malformed line %S" line)
            | Some i ->
              let key = String.sub line 0 i in
              let value = String.sub line (i + 1) (String.length line - i - 1) in
              (match key with
               | "seed" ->
                 (match int_of_token value with
                  | Ok s -> seed := Some s
                  | Error e -> err := Some e)
               | "graph" -> graph := Some value
               | "param" ->
                 (match String.index_opt value ' ' with
                  | Some j ->
                    params :=
                      ( String.sub value 0 j,
                        String.sub value (j + 1) (String.length value - j - 1) )
                      :: !params
                  | None -> err := Some (Printf.sprintf "malformed param line %S" line))
               | "fingerprint" -> fingerprint := Some value
               | "event" ->
                 (match event_of_line line with
                  | Ok ev -> events := ev :: !events
                  | Error e -> err := Some e)
               | _ -> err := Some (Printf.sprintf "unknown line key %S" key))
        end)
      rest;
    (match (!err, !seed, !graph, !fingerprint) with
     | Some e, _, _, _ -> Error e
     | None, None, _, _ -> Error "missing seed line"
     | None, _, None, _ -> Error "missing graph line"
     | None, _, _, None -> Error "missing fingerprint line"
     | None, Some seed, Some graph, Some fingerprint ->
       Ok
         {
           seed;
           graph;
           params = List.rev !params;
           fingerprint;
           events = List.rev !events;
         })
  | _ -> Error (Printf.sprintf "missing %S header" magic)

let write ~path a =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun line ->
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n')
        (to_lines a))

let read ~path =
  match In_channel.with_open_text path In_channel.input_lines with
  | lines -> of_lines lines
  | exception Sys_error e -> Error e

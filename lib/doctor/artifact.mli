(** Runnable repro artifacts: seed + minimal event list + expected violation.

    A plain-text, line-based format (`rofl-doctor-repro v1`) that
    [rofl_sim doctor --replay FILE] re-executes:

    {v
    rofl-doctor-repro v1
    seed 42
    graph waxman 12 30 0x1.999...p-2 0x1.999...p-3
    param horizon_ms 0x1.f4p+12
    ...
    fingerprint stale-grace:1f2e3d4c
    event join 0x1.8p+5 0
    event stab-off 0x1.9p+9
    event crash 0x1.ap+9 0
    v}

    Timestamps are hex floats ([%h]), so replays reconstruct bit-identical
    event times.  The [graph] line is an opaque topology spec interpreted by
    the campaign-side replay glue, keeping this library free of topology
    generation; [param] lines carry campaign/protocol scalars the same
    way. *)

type fault =
  | Cross_splice of { at_ms : float }
      (** {!Rofl_proto.Proto.inject_cross_splice} at the given time *)
  | Stab_off of { at_ms : float }
      (** stop the stabilizer at the given time *)
  | Eclipse of { at_ms : float; victim : int; count : int; crash_at_ms : float }
      (** mine [count] self-certifying sybil identifiers into the ring arc
          owned by router [victim]'s label and join them all through one
          content-keyed attacker gateway; a negative [crash_at_ms] leaves
          them resident, otherwise they all crash at once then — the
          coordinated-failure half of an eclipse *)
  | Poison of { at_ms : float; fraction : float }
      (** flip a content-keyed [fraction] of routers to
          [Rofl_proto.Proto.Poison_succs] conduct *)
  | Forge of { at_ms : float; count : int }
      (** submit [count] joins whose credentials belong to a different
          identifier — the forged-claim workload the verification gate
          exists to reject *)

type event = Churn of Rofl_workload.Churn.event | Fault of fault

val event_time : event -> float

type t = {
  seed : int;
  graph : string;                   (** opaque topology spec tokens *)
  params : (string * string) list;  (** named scalars, in file order *)
  fingerprint : string;             (** expected {!Checks.fingerprint} *)
  events : event list;
}

val to_lines : t -> string list

val of_lines : string list -> (t, string) result

val write : path:string -> t -> unit

val read : path:string -> (t, string) result

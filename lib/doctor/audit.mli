(** Continuous checkpoint audits over a running campaign.

    An audit attaches to the protocol's event engine through the
    {!Rofl_netsim.Engine.set_monitor} observer — {e not} through scheduled
    events, which would shift FIFO tie-breaking sequence numbers and change
    the simulation — and sweeps {!Checks.proto_checks} every [every_ms] of
    simulated time.  Audits are pure observers: attaching one to a campaign
    leaves every table byte-identical. *)

type config = {
  every_ms : float;               (** checkpoint cadence (simulated ms, > 0) *)
  stale_grace_ms : float option;  (** grace for the stale-successor check *)
  max_recorded : int;             (** violations kept verbatim; the rest only counted *)
}

val config_for : Rofl_proto.Proto.config -> config
(** Derive a cadence and grace from a protocol configuration: checkpoints
    every stabilisation period, stale grace of eight worst-case repair
    chains (period + full probe retry budget each). *)

type summary = {
  checkpoints : int;                    (** checkpoint sweeps executed *)
  violations : Checks.violation list;   (** recorded, in detection order *)
  total_violations : int;               (** including any past [max_recorded] *)
}

val ok : summary -> bool

val first : summary -> Checks.violation option

type t

val create : ?extra:(float -> Checks.violation list) -> config -> Rofl_proto.Proto.t -> t
(** [extra], when given, runs at every checkpoint after the proto sweep and
    its violations are recorded the same way — how campaigns attach
    layer-specific audits (e.g. {!Checks.services_checks} closed over a
    directory) without the auditor depending on every layer. *)

val install : t -> unit
(** Start observing: a checkpoint fires on the first event executed at or
    past each cadence boundary (multiple boundaries crossed by one quiet gap
    collapse into a single sweep of the unchanged state). *)

val detach : t -> unit

val summary : t -> summary

(** Deterministic event-list reduction for repro artifacts.

    Given a list of events whose deterministic replay exhibits a violation,
    [minimize ~reproduces events] returns a sub-list that still exhibits it:
    first the shortest reproducing prefix by bisection (violations are
    caught at checkpoints mid-run, so reproduction is monotone in prefix
    length), then greedy one-at-a-time drops repeated to a fixpoint, so the
    result is 1-minimal — removing any single remaining event loses the
    violation.

    [reproduces] must be a pure function of the candidate list (same PRNG
    seed, same parameters on every call); it is invoked O(log n + k·n)
    times for [k] fixpoint passes, each typically a full campaign re-run —
    keep the scenarios small. *)

val minimize : reproduces:('a list -> bool) -> 'a list -> 'a list

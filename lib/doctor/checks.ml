module Id = Rofl_idspace.Id
module Proto = Rofl_proto.Proto
module Pointer_cache = Rofl_core.Pointer_cache
module Network = Rofl_intra.Network
module Invariant = Rofl_intra.Invariant
module Net = Rofl_inter.Net
module Interinvariant = Rofl_inter.Interinvariant

type violation = { check : string; subject : string; detail : string; at_ms : float }

let fingerprint v = v.check ^ ":" ^ v.subject

let pp_violation fmt v =
  Format.fprintf fmt "[%s] %s at t=%.1fms: %s" v.check v.subject v.at_ms v.detail

let to_string v = Format.asprintf "%a" pp_violation v

(* ---- proto-level checks ------------------------------------------------- *)

let proto_checks ?stale_grace_ms ~at_ms (p : Proto.t) =
  let out = ref [] in
  let emit check subject fmt =
    Printf.ksprintf (fun detail -> out := { check; subject; detail; at_ms } :: !out) fmt
  in
  let short = Id.to_short_string in
  let views = Proto.residents_view p in
  (* Residency oracle and resident state must describe the same membership:
     every resident registered where it lives, no identifier resident twice,
     no oracle member without backing state. *)
  List.iter
    (fun (vw : Proto.resident_view) ->
      match Proto.locate p vw.v_id with
      | Some r when r = vw.v_router -> ()
      | Some r ->
        emit "oracle-agreement" (short vw.v_id) "resident at router %d, oracle says %d"
          vw.v_router r
      | None ->
        emit "oracle-agreement" (short vw.v_id) "resident at router %d, unknown to oracle"
          vw.v_router)
    views;
  let rec dups = function
    | (a : Proto.resident_view) :: (b : Proto.resident_view) :: rest ->
      if Id.equal a.v_id b.v_id then
        emit "duplicate-resident" (short a.v_id) "resident at routers %d and %d"
          a.v_router b.v_router;
      dups (b :: rest)
    | _ -> ()
  in
  dups views;
  let rec members_covered ms (vs : Proto.resident_view list) =
    match (ms, vs) with
    | [], _ -> ()
    | m :: ms', [] ->
      emit "oracle-agreement" (short m) "oracle member with no resident state";
      members_covered ms' []
    | m :: ms', vw :: vs' ->
      let c = Id.compare m vw.v_id in
      if c = 0 then members_covered ms' vs'
      else if c < 0 then begin
        emit "oracle-agreement" (short m) "oracle member with no resident state";
        members_covered ms' vs
      end
      else members_covered ms vs'
  in
  members_covered (Proto.members p) views;
  (* Successor-list hygiene per resident: the backup tail holds distinct
     entries in strictly increasing clockwise distance, never the holder,
     never a duplicate of the successor; and no backup may be strictly
     closer than the successor itself — that inversion is the loopy-ring
     evidence pairwise stabilisation cannot see. *)
  List.iter
    (fun (vw : Proto.resident_view) ->
      let self = vw.v_id in
      let subject = short self in
      List.iter
        (fun (i, _) ->
          if Id.equal i self then
            emit "succ-list-self" subject "backup list contains the holder itself")
        vw.v_succ_list;
      let rec ordered = function
        | (a, _) :: (((b, _) :: _) as rest) ->
          if Id.compare_dist self a self b >= 0 then
            emit "succ-list-order" subject "backups %s, %s out of clockwise order"
              (short a) (short b);
          ordered rest
        | _ -> ()
      in
      ordered vw.v_succ_list;
      match vw.v_succ with
      | Some (s, _) ->
        if List.exists (fun (i, _) -> Id.equal i s) vw.v_succ_list then
          emit "succ-list-dup" subject "successor %s repeated in backups" (short s);
        if not (Id.equal s self) then
          List.iter
            (fun (b, _) ->
              if (not (Id.equal b self)) && Id.compare_dist self b self s < 0 then
                emit "loopy-evidence" subject
                  "backup %s strictly closer than successor %s" (short b) (short s))
            vw.v_succ_list
      | None -> ())
    views;
  (* Pointer caches must respect their configured capacity: an entry count
     past the cap means insert/evict bookkeeping broke. *)
  if not (Proto.pcache_capacity_ok p) then
    emit "pcache-capacity" "proto"
      "a router's pointer cache exceeds its configured capacity (%d entries total)"
      (Proto.pcache_entries p);
  (* Network-size estimation drift: on a converged ring of reasonable size,
     the median of the per-node density estimates must land within a small
     factor of the true membership.  Per-node samples are Erlang-noisy
     (individual nodes can be off by 8x), so only the median is checked —
     it is also the only quantity the auto-tuner consumes.  Gated on
     convergence and >= 64 members: tiny or mid-repair rings estimate from
     stale spans and legitimately miss. *)
  let n_members = List.length (Proto.members p) in
  if n_members >= 64 && Proto.ring_converged p then begin
    let nhat = Proto.estimate_n p in
    let actual = float_of_int n_members in
    if nhat < actual /. 4.0 || nhat > actual *. 4.0 then
      emit "nhat-drift" "proto"
        "median size estimate %.0f vs %d members (beyond factor 4)" nhat n_members
  end;
  (* A stale successor window still open past the repair grace means
     detection/failover stopped working (e.g. the stabilizer died). *)
  (match stale_grace_ms with
   | None -> ()
   | Some grace ->
     List.iter
       (fun (rid, since) ->
         let open_ms = at_ms -. since in
         if open_ms > grace then
           emit "stale-grace" (short rid)
             "successor stale for %.0f ms (grace %.0f ms)" open_ms grace)
       (Proto.stale_open_since p));
  (* ---- attack-detection invariants.  These audit the *declared* policy
     ([Proto.config]), not the enforcement switch: a ring that declares a
     diversity quota but runs with [quota_enforce = false] is exactly the
     configuration whose saturation these checks exist to surface. *)
  let cfg = Proto.config p in
  let groups = Proto.router_groups p in
  (* Eclipse saturation: more *admitted* backups from one diversity group
     (PoP) than the declared per-group quota.  A backup tail monopolised by
     one group is one coordinated crash away from a black hole — the
     structural signature of a sybil eclipse.  Infrastructure entries (a
     router's own label hosted at itself) are exempt, mirroring the
     enforcement filter: their placement is the operator's topology, and
     small rings legitimately run same-PoP label streaks. *)
  if cfg.Proto.succ_quota > 0 && Array.length groups > 0 then
    List.iter
      (fun (vw : Proto.resident_view) ->
        let counts = Hashtbl.create 8 in
        List.iter
          (fun (b, r) ->
            if not (Rofl_idspace.Id.equal b (Proto.router_label r)) then
              let g = groups.(r) in
              Hashtbl.replace counts g
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts g)))
          vw.v_succ_list;
        Hashtbl.iter
          (fun g c ->
            if c > cfg.Proto.succ_quota then
              emit "eclipse-saturation" (short vw.v_id)
                "%d of %d backups from group %d (quota %d)" c
                (List.length vw.v_succ_list)
                g cfg.Proto.succ_quota)
          counts)
      views;
  (* Poisoned pointers: an identifier referenced by someone's pointer state
     (successor, backup tail, predecessor, or a pointer-cache entry) that
     was never admitted to the ring.  Residents only learn identifiers from
     protocol messages, so a never-admitted pointee means a router
     fabricated it — the Poison_succs signature. *)
  let poisoned = Hashtbl.create 8 in
  let suspect id ~holder ~via =
    if not (Proto.ever_member p id) then
      if not (Hashtbl.mem poisoned id) then begin
        Hashtbl.replace poisoned id ();
        emit "poison-residency" (short id) "%s pointer of %s names a never-admitted id"
          via holder
      end
  in
  List.iter
    (fun (vw : Proto.resident_view) ->
      let holder = short vw.v_id in
      (match vw.v_succ with Some (s, _) -> suspect s ~holder ~via:"successor" | None -> ());
      List.iter (fun (b, _) -> suspect b ~holder ~via:"backup") vw.v_succ_list;
      match vw.v_pred with Some (pr, _) -> suspect pr ~holder ~via:"predecessor" | None -> ())
    views;
  Proto.pcache_iter p (fun ~router id _ ->
      suspect id ~holder:(Printf.sprintf "router-%d" router) ~via:"pointer-cache");
  (* Forged admissions: residents whose join claim failed verification but
     were admitted anyway (only possible with [verify_joins] off) — the
     ground truth behind the headline unverified-join hole. *)
  List.iter
    (fun (vw : Proto.resident_view) ->
      if Proto.is_tainted p vw.v_id then
        emit "forged-admission" (short vw.v_id)
          "resident at router %d was admitted under a failed identity proof"
          vw.v_router)
    views;
  (* Pointer-cache diversity quota: enforcement bookkeeping, symmetric to
     pcache-capacity — if insertion's group accounting broke, some cache
     holds more entries of one group than its admission quota allows. *)
  if cfg.Proto.quota_enforce && not (Proto.pcache_quota_ok p) then
    emit "pcache-quota" "proto"
      "a router's pointer cache exceeds the per-group quota of %d" cfg.Proto.succ_quota;
  List.rev !out

(* ---- pointer-cache agreement -------------------------------------------- *)

let pointer_cache_checks ~at_ms ~subject cache =
  List.map
    (fun detail -> { check = "pointer-cache-agreement"; subject; detail; at_ms })
    (Pointer_cache.audit cache)

(* ---- wrappers over the existing point checks ---------------------------- *)

let of_report ~at_ms ~check ~subject (violations : string list) =
  List.map (fun detail -> { check; subject; detail; at_ms }) violations

let intra_checks ?(routability_samples = 0) ~at_ms (net : Network.t) =
  let r = Invariant.check net in
  let base = of_report ~at_ms ~check:"intra-invariant" ~subject:"intra" r.violations in
  let routes =
    if routability_samples <= 0 then []
    else begin
      let rr = Invariant.check_routability net ~samples:routability_samples in
      let vs = of_report ~at_ms ~check:"intra-routability" ~subject:"intra" rr.violations in
      if rr.Invariant.inconclusive then
        {
          check = "intra-routability";
          subject = "intra";
          detail =
            Printf.sprintf "inconclusive: 0 of %d draws routable with %d members checked"
              rr.Invariant.samples_drawn rr.Invariant.checked_members;
          at_ms;
        }
        :: vs
      else vs
    end
  in
  let caches =
    Array.to_list net.Network.routers
    |> List.concat_map (fun (r : Network.router) ->
           pointer_cache_checks ~at_ms
             ~subject:(Printf.sprintf "router-%d" r.Network.idx)
             r.Network.cache)
  in
  base @ routes @ caches

let inter_checks ?(routability_samples = 0) ~at_ms (net : Net.t) =
  let r = Interinvariant.check net in
  let base =
    of_report ~at_ms ~check:"inter-invariant" ~subject:"inter"
      r.Interinvariant.violations
  in
  let routes =
    if routability_samples <= 0 then []
    else
      of_report ~at_ms ~check:"inter-routability" ~subject:"inter"
        (Interinvariant.check_routability net ~samples:routability_samples)
          .Interinvariant.violations
  in
  base @ routes

(* ---- service-layer checks ------------------------------------------------ *)

module Directory = Rofl_services.Directory
module Provider_store = Rofl_services.Provider_store
module Resolver = Rofl_services.Resolver

(* Ring owner of an identifier under the current membership.  The data
   plane settles greedily on the identifier closest clockwise *to* the
   target without passing it — the target's predecessor: the greatest
   member <= id in unsigned order, wrapping to the largest member when the
   id precedes them all.  O(log n) per query over a sorted snapshot. *)
let ring_owner members id =
  let n = Array.length members in
  if n = 0 then None
  else begin
    (* least index whose member is > id; the owner sits just before it *)
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Id.compare members.(mid) id <= 0 then lo := mid + 1 else hi := mid
    done;
    Some members.(if !lo = 0 then n - 1 else !lo - 1)
  end

let services_checks ?expiry_grace_ms ~at_ms (dir : Directory.t) =
  let out = ref [] in
  let emit check subject fmt =
    Printf.ksprintf (fun detail -> out := { check; subject; detail; at_ms } :: !out) fmt
  in
  let short = Id.to_short_string in
  let proto = Directory.proto dir in
  let store = Directory.store dir in
  let cfg = Directory.config dir in
  (* No expired record may outlive the sweep cadence by more than the grace:
     a record still resident grace-past its TTL means the expiry sweep
     stopped (or a refresh wrote a past deadline).  The grace defaults to
     two republish periods — a full period for the sweep that should have
     caught it, and another for scheduling slack. *)
  let grace =
    match expiry_grace_ms with
    | Some g -> g
    | None -> 2.0 *. cfg.Directory.republish_period_ms
  in
  Provider_store.iter store (fun s ->
      let deadline = Provider_store.expires_ms store s +. grace in
      if deadline < at_ms then
        emit "svc-expiry"
          (Printf.sprintf "%s@%d" (short (Provider_store.service store s))
             (Provider_store.owner store s))
          "record expired at %.1fms still resident %.1fms past grace"
          (Provider_store.expires_ms store s)
          (at_ms -. deadline));
  (* After reconvergence, every intent's current placement must sit with the
     ring owner of its service identifier — the walk that placed it and the
     membership oracle must agree.  Only checked when the ring is converged
     (mid-repair placement is legitimately behind); decaying copies at old
     owners are exempt, since only the *current* placement is consulted. *)
  if Proto.ring_converged proto then begin
    let members = Array.of_list (Proto.members proto) in
    for k = 0 to Directory.intent_count dir - 1 do
      if Directory.intent_active dir k then begin
        let s = Directory.intent_placement dir k in
        if s >= 0 then begin
          let service = Directory.intent_service dir k in
          match ring_owner members service with
          | None -> ()
          | Some owner_id ->
            let owner_router = Proto.locate proto owner_id in
            let placed_router = Provider_store.owner store s in
            (match owner_router with
             | Some r when r = placed_router -> ()
             | Some r ->
               emit "svc-residency"
                 (Printf.sprintf "%s/%s" (short service)
                    (short (Directory.intent_provider dir k)))
                 "record placed at router %d, ring owner %s lives at %d"
                 placed_router (short owner_id) r
             | None ->
               emit "svc-residency"
                 (Printf.sprintf "%s/%s" (short service)
                    (short (Directory.intent_provider dir k)))
                 "ring owner %s unknown to the residency oracle" (short owner_id))
        end
      end
    done
  end;
  (* No resolver may have served an answer decayed past its grace window —
     the cache-side half of the TTL discipline.  The counter only moves when
     the serve-stale fault knob is on (or a freshness bug slips in). *)
  let served = Directory.served_expired_total dir in
  if served > 0 then
    emit "svc-stale-serve" "resolvers"
      "%d answers served from entries decayed past the %.0fms grace window"
      served cfg.Directory.cache.Resolver.stale_grace_ms;
  List.rev !out

(** Ring-consistency checks.

    The simulator's ground-truth oracle lets tests and experiments verify the
    invariants §3.2 promises: (a) reachable members can route to each other,
    (b) successor pointers agree with the oracle ring restricted to each
    connected component, (c) no pointer leads to dead equipment.  The paper
    performed the same "consistency checks for misconverged rings in the
    simulator" (§6.2). *)

type report = {
  ok : bool;
  violations : string list; (** empty iff no invariant was broken *)
  checked_members : int;
  (** for {!check}: live members swept; for {!check_routability}: pairs
      actually routed (drawn, distinct and mutually reachable). *)
  samples_drawn : int;
  (** for {!check_routability}: pair draws consumed, including the ones
      rejected as identical or cross-partition — compare with
      [checked_members] to see how much of the sample survived. *)
  inconclusive : bool;
  (** {!check_routability} could not exercise a single pair although ≥ 2
      members are live (total partition into singletons, or pathological
      sampling).  Forces [ok = false] so "nothing was checked" can never
      read as "all checks passed". *)
  stale_tail_entries : int;
  (** successor/predecessor-group tail entries pointing at departed
      identifiers.  Tails are repaired lazily (probes piggybacked on data
      packets and negative acks, §4.1), so they are reported but are not
      violations; group heads pointing at dead identifiers are. *)
}

val check : Network.t -> report
(** Full sweep: successor/predecessor agreement per component, liveness of
    pointer targets, validity of source routes, ephemeral attachment
    presence. *)

val check_routability : Network.t -> samples:int -> report
(** Route [samples] random packets between random live identifier pairs in
    the same component and require delivery — invariant (a).  Draws are
    resampled (up to a budget of [8 * samples]) until [samples] routable
    pairs were exercised; if not a single pair could be checked with ≥ 2
    live members the report is {!report.inconclusive} and not [ok]. *)

module Id = Rofl_idspace.Id
module Ring = Rofl_idspace.Ring
module Vnode = Rofl_core.Vnode
module Pointer = Rofl_core.Pointer
module Linkstate = Rofl_linkstate.Linkstate
module Prng = Rofl_util.Prng

type report = {
  ok : bool;
  violations : string list;
  checked_members : int;
  samples_drawn : int;
  inconclusive : bool;
  stale_tail_entries : int;
}

(* The oracle successor within [vn]'s connected component. *)
let expected_successor (t : Network.t) (vn : Vnode.t) =
  let limit = Ring.cardinal t.Network.oracle in
  let rec go cur steps =
    if steps > limit then None
    else
      match Ring.successor cur t.Network.oracle with
      | Some (sid, _) when Id.equal sid vn.Vnode.id -> None
      | Some (sid, (sv : Vnode.t)) ->
        if
          sv.Vnode.alive
          && Linkstate.reachable t.Network.ls vn.Vnode.hosted_at sv.Vnode.hosted_at
        then Some (sid, sv)
        else go sid (steps + 1)
      | None -> None
  in
  go vn.Vnode.id 0

let check (t : Network.t) =
  let violations = ref [] in
  let checked = ref 0 in
  let stale_tails = ref 0 in
  let bad fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  Hashtbl.iter
    (fun id (vn : Vnode.t) ->
      if vn.Vnode.alive then begin
        incr checked;
        match vn.Vnode.host_class with
        | Vnode.Stable | Vnode.Router_default ->
          (* (b) successor pointer agreement. *)
          (match (Vnode.first_succ vn, expected_successor t vn) with
           | Some (p : Pointer.t), Some (want, _) ->
             if not (Id.equal p.Pointer.dst want) then
               bad "%s: successor %s, oracle expects %s" (Id.to_short_string id)
                 (Id.to_short_string p.Pointer.dst) (Id.to_short_string want)
           | None, Some (want, _) ->
             bad "%s: missing successor, oracle expects %s" (Id.to_short_string id)
               (Id.to_short_string want)
           | Some _, None | None, None -> ());
          (* (c) group HEADS lead to live state; stale tails are lazily
             repaired and only counted. *)
          let dead (p : Pointer.t) =
            match Network.find_vnode t p.Pointer.dst with
            | Some (dv : Vnode.t) -> not dv.Vnode.alive
            | None -> true
          in
          let check_group label = function
            | [] -> ()
            | (head : Pointer.t) :: tail ->
              if dead head then
                bad "%s: %s head points to dead id %s" (Id.to_short_string id) label
                  (Id.to_short_string head.Pointer.dst);
              List.iter (fun p -> if dead p then incr stale_tails) tail
          in
          check_group "successor" vn.Vnode.succs;
          check_group "predecessor" vn.Vnode.preds
        | Vnode.Ephemeral ->
          (* Attachment present at the ring predecessor. *)
          (match Vnode.first_pred vn with
           | Some (p : Pointer.t) ->
             let pr = t.Network.routers.(p.Pointer.dst_router) in
             (match Hashtbl.find_opt pr.Network.attachments id with
              | Some host when host = vn.Vnode.hosted_at -> ()
              | Some host ->
                bad "%s: attachment points to router %d, host is at %d"
                  (Id.to_short_string id) host vn.Vnode.hosted_at
              | None ->
                bad "%s: no attachment at predecessor router %d" (Id.to_short_string id)
                  p.Pointer.dst_router)
           | None -> bad "%s: ephemeral id with no predecessor" (Id.to_short_string id))
      end)
    t.Network.vnodes;
  {
    ok = !violations = [];
    violations = List.rev !violations;
    checked_members = !checked;
    samples_drawn = !checked;
    inconclusive = false;
    stale_tail_entries = !stale_tails;
  }

let check_routability (t : Network.t) ~samples =
  let ids =
    Hashtbl.fold
      (fun id (vn : Vnode.t) acc -> if vn.Vnode.alive then (id, vn) :: acc else acc)
      t.Network.vnodes []
    |> Array.of_list
  in
  let violations = ref [] in
  let checked = ref 0 in
  let drawn = ref 0 in
  let live = Array.length ids in
  if live >= 2 then begin
    (* Each draw may land on an identical or cross-partition pair, which
       cannot be routed and does not count as a check — so keep drawing, up
       to a retry budget, until [samples] pairs were actually exercised (the
       seed burnt [samples] draws and silently reported whatever subset
       happened to be reachable, down to an "all green" empty report). *)
    let budget = 8 * samples in
    while !checked < samples && !drawn < budget do
      incr drawn;
      let sid, (sv : Vnode.t) = Prng.sample t.Network.rng ids in
      let did, (dv : Vnode.t) = Prng.sample t.Network.rng ids in
      if
        (not (Id.equal sid did))
        && Linkstate.reachable t.Network.ls sv.Vnode.hosted_at dv.Vnode.hosted_at
      then begin
        incr checked;
        let d = Forward.route_packet t ~from:sv.Vnode.hosted_at ~dest:did in
        match d.Forward.delivered_to with
        | Some (got : Vnode.t) when Id.equal got.Vnode.id did -> ()
        | Some got ->
          violations :=
            Printf.sprintf "packet for %s delivered to %s" (Id.to_short_string did)
              (Id.to_short_string got.Vnode.id)
            :: !violations
        | None ->
          violations :=
            Printf.sprintf "packet for %s from router %d undeliverable"
              (Id.to_short_string did) sv.Vnode.hosted_at
            :: !violations
      end
    done
  end;
  let inconclusive = live >= 2 && !checked = 0 in
  {
    ok = !violations = [] && not inconclusive;
    violations = List.rev !violations;
    checked_members = !checked;
    samples_drawn = !drawn;
    inconclusive;
    stale_tail_entries = 0;
  }

module Id = Rofl_idspace.Id
module Ring = Rofl_idspace.Ring
module Vnode = Rofl_core.Vnode
module Pointer = Rofl_core.Pointer
module Pointer_cache = Rofl_core.Pointer_cache
module Sourceroute = Rofl_core.Sourceroute
module Msg = Rofl_core.Msg
module Graph = Rofl_topology.Graph
module Linkstate = Rofl_linkstate.Linkstate
module Metrics = Rofl_netsim.Metrics
module Walk = Rofl_routing.Walk
module Charge = Rofl_routing.Charge
module Trace = Rofl_routing.Trace
module Prng = Rofl_util.Prng
module Identity = Rofl_crypto.Identity
module Sha256 = Rofl_crypto.Sha256

let log_src = Rofl_util.Logging.make_src "intra"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  succ_group_size : int;
  pred_group_size : int;
  cache_capacity : int;
  cache_control_paths : bool;
  authenticate_joins : bool;
  sybil_limit : int;
}

let default_config =
  {
    succ_group_size = 4;
    pred_group_size = 2;
    cache_capacity = 1024;
    cache_control_paths = true;
    authenticate_joins = true;
    sybil_limit = 100_000;
  }

type router = {
  idx : int;
  default_vnode : Vnode.t;
  mutable residents : Vnode.t list;
  cache : Pointer_cache.t;
  auditor : Identity.sybil_auditor;
  attachments : (Id.t, int) Hashtbl.t;
}

type t = {
  graph : Graph.t;
  ls : Linkstate.t;
  rng : Prng.t;
  cfg : config;
  routers : router array;
  metrics : Metrics.t;
  vnodes : (Id.t, Vnode.t) Hashtbl.t;
  mutable oracle : Vnode.t Ring.t;
  mutable bootstrap_msgs : int;
}

let router_id i =
  Id.of_bytes_exn (String.sub (Sha256.digest (Printf.sprintf "router:%d" i)) 0 16)

(* -- path helpers ------------------------------------------------------- *)

let path_latency t = function
  | [] | [ _ ] -> 0.0
  | hops ->
    let rec go acc = function
      | a :: (b :: _ as rest) -> go (acc +. Graph.latency t.graph a b) rest
      | [ _ ] | [] -> acc
    in
    go 0.0 hops

let spf_route t src dst =
  match Linkstate.path t.ls src dst with
  | Some hops -> Some (Sourceroute.of_hops hops)
  | None -> None

let make_pointer t kind ~from_router ~dst ~dst_router =
  match spf_route t from_router dst_router with
  | Some route -> Some (Pointer.make kind ~dst ~dst_router ~route)
  | None -> None

(* Charge a message travelling the SPF path between two routers; returns the
   hop count and latency (0 if unreachable). *)
let charge_spf t category src dst =
  match Linkstate.path t.ls src dst with
  | Some hops ->
    Charge.path t.metrics category hops;
    (List.length hops - 1, path_latency t hops)
  | None -> (0, 0.0)

(* -- construction ------------------------------------------------------- *)

let create ?(cfg = default_config) ~rng graph =
  if cfg.succ_group_size < 1 then invalid_arg "Network.create: succ group must be >= 1";
  let ls = Linkstate.create graph in
  let n = Graph.n graph in
  let routers =
    Array.init n (fun idx ->
        {
          idx;
          default_vnode = Vnode.create (router_id idx) Vnode.Router_default ~hosted_at:idx;
          residents = [];
          cache = Pointer_cache.create ~capacity:cfg.cache_capacity;
          auditor = Identity.auditor ~limit:cfg.sybil_limit;
          attachments = Hashtbl.create 8;
        })
  in
  let t =
    {
      graph;
      ls;
      rng;
      cfg;
      routers;
      metrics = Metrics.create ~routers:n;
      vnodes = Hashtbl.create (4 * n);
      oracle = Ring.empty;
      bootstrap_msgs = 0;
    }
  in
  (* Bootstrap: every router's default vnode joins by flooding its
     router-ID (§3.1); the resulting steady state is the ring over
     router-IDs with succ/pred groups and SPF source routes. *)
  Array.iter
    (fun r ->
      r.residents <- [ r.default_vnode ];
      Hashtbl.replace t.vnodes r.default_vnode.Vnode.id r.default_vnode;
      t.oracle <- Ring.add r.default_vnode.Vnode.id r.default_vnode t.oracle;
      let cost = Linkstate.lsa_flood_cost ls in
      Charge.bulk t.metrics Msg.flood cost;
      t.bootstrap_msgs <- t.bootstrap_msgs + cost)
    routers;
  Array.iter
    (fun r ->
      let vn = r.default_vnode in
      let succs =
        Ring.k_successors cfg.succ_group_size vn.Vnode.id t.oracle
        |> List.filter_map (fun (sid, (sv : Vnode.t)) ->
               if Id.equal sid vn.Vnode.id then None
               else
                 make_pointer t Pointer.Successor ~from_router:r.idx ~dst:sid
                   ~dst_router:sv.Vnode.hosted_at)
      in
      Vnode.set_succs vn succs;
      let preds =
        let rec collect acc cur k =
          if k = 0 then acc
          else
            match Ring.predecessor cur t.oracle with
            | Some (pid, (pv : Vnode.t)) when not (Id.equal pid vn.Vnode.id) ->
              let acc =
                match
                  make_pointer t Pointer.Predecessor ~from_router:r.idx ~dst:pid
                    ~dst_router:pv.Vnode.hosted_at
                with
                | Some p -> p :: acc
                | None -> acc
              in
              collect acc pid (k - 1)
            | Some _ | None -> acc
        in
        List.rev (collect [] vn.Vnode.id cfg.pred_group_size)
      in
      Vnode.set_preds vn preds)
    routers;
  t

(* -- greedy lookup ------------------------------------------------------ *)

type lookup_status = Delivered of Vnode.t | Predecessor of Vnode.t | Stuck of int

type lookup_result = {
  status : lookup_status;
  msgs : int;
  latency_ms : float;
  visited : int list;
  trace : Trace.t;
}

type candidate = Local of Vnode.t | Remote of Pointer.t

let candidate_id = function
  | Local vn -> vn.Vnode.id
  | Remote (p : Pointer.t) -> p.Pointer.dst

(* The walk moves ONE physical hop at a time: Algorithm 2's route() runs at
   every router a message transits, so transit routers can shortcut through
   their own residents and pointer caches.  The greedy loop itself —
   closest-without-overshoot ranking, strictly-closer replacement of the
   committed source route, stale-pointer NACK/restart, step guard — lives in
   {!Rofl_routing.Walk}; this substrate supplies the router-granularity
   state: candidate enumeration, source-route commits, per-link charging. *)
module Lookup_substrate = struct
  type st = {
    net : t;
    target : Id.t;
    category : string;
    use_cache : bool;
    exclude : Id.t option;
    step_limit : int;
    mutable msgs : int;
    mutable latency : float;
    mutable rev_visited : int list;
    (* Router that handed out the committed pointer and the identifier it
       chases: the NACK addressee when the pointer turns out stale. *)
    mutable commit_src : (int * Id.t) option;
    mutable commit_kind : Trace.kind;
    mutable commit_dist : Id.t;
    tracer : Trace.builder;
  }

  type pos = int
  type cand = candidate
  type route = int list
  type verdict = lookup_result

  let max_steps st = st.step_limit
  let restart_limit _ = 4
  let horizon = `Persistent
  let arrived _ _ = None
  let prepare _ cur = cur

  let finish st status =
    {
      status;
      msgs = st.msgs;
      latency_ms = st.latency;
      visited = List.rev st.rev_visited;
      trace = Trace.events st.tracer;
    }

  let resident_alive st cur id =
    List.exists
      (fun (vn : Vnode.t) -> vn.Vnode.alive && Id.equal vn.Vnode.id id)
      st.net.routers.(cur).residents

  (* Negative acknowledgement: the router that handed out a pointer to an
     identifier no longer resident at its target prunes it (the lazy probe
     repair of group tails, §4.1). *)
  let nack st cur owner chased =
    let t = st.net in
    let _ = charge_spf t Msg.teardown cur owner in
    List.iter
      (fun (vn : Vnode.t) ->
        ignore
          (Vnode.drop_pointers_if vn (fun (p : Pointer.t) -> Id.equal p.Pointer.dst chased)))
      t.routers.(owner).residents;
    Pointer_cache.remove t.routers.(owner).cache chased;
    Pointer_cache.remove t.routers.(cur).cache chased

  let stale_commit st cur =
    match st.commit_src with
    | Some (owner, chased) when not (resident_alive st cur chased) ->
      (* Arrived where the chased identifier should live, but it is gone:
         stale pointer. *)
      nack st cur owner chased;
      Trace.record st.tracer ~kind:Trace.Backtrack ~router:cur ~level:"intra"
        ~dist:(Id.distance chased st.target);
      st.commit_src <- None;
      true
    | Some _ | None -> false

  let target st = st.target
  let cand_id _st c = candidate_id c

  (* Enumeration order encodes tie precedence for {!Walk.best}: residents
     (and their successor pointers) first, the cache shortcut last. *)
  let candidates st cur =
    let t = st.net in
    let r = t.routers.(cur) in
    (* Pointer routes are recorded from links actually traversed (or SPF
       paths), so consecutive pairs are always graph links: with no failure
       outstanding they are valid by construction and the per-hop scan can
       be skipped. *)
    let healthy = Linkstate.healthy t.ls in
    let route_valid route = healthy || Sourceroute.is_valid t.ls route in
    let excluded id = match st.exclude with Some e -> Id.equal e id | None -> false in
    let acc = ref [] in
    let consider c = if not (excluded (candidate_id c)) then acc := c :: !acc in
    List.iter
      (fun (vn : Vnode.t) ->
        if vn.Vnode.alive then begin
          (* Ephemeral identifiers never serve as ring hops (§2.2); they are
             only candidates when they are the packet's own destination. *)
          let routable =
            match vn.Vnode.host_class with
            | Vnode.Stable | Vnode.Router_default -> true
            | Vnode.Ephemeral -> Id.equal vn.Vnode.id st.target
          in
          if routable then consider (Local vn);
          List.iter
            (fun (p : Pointer.t) ->
              (* Same-router pointers are covered by Local candidates (or are
                 stale); a remote candidate must actually lead elsewhere. *)
              if p.Pointer.dst_router <> r.idx && route_valid p.Pointer.route
              then consider (Remote p))
            vn.Vnode.succs
        end)
      r.residents;
    if st.use_cache then begin
      match Pointer_cache.best_match r.cache ~cur:st.target ~target:st.target with
      | Some p ->
        if p.Pointer.dst_router <> r.idx && route_valid p.Pointer.route then
          consider (Remote p)
      | None -> ()
    end;
    List.rev !acc

  let deliver_here st _cur = function
    | Local vn when Id.equal vn.Vnode.id st.target -> Some (finish st (Delivered vn))
    | Local vn ->
      (* The closest known identifier is resident right here and its
         successors all overshoot: this vnode is the predecessor. *)
      Some (finish st (Predecessor vn))
    | Remote _ -> None

  let commit st cur = function
    | Local _ -> None (* unreachable: deliver_here terminates on locals *)
    | Remote (p : Pointer.t) ->
      st.commit_src <- Some (cur, p.Pointer.dst);
      st.commit_kind <-
        (match p.Pointer.kind with
         | Pointer.Cached -> Trace.Cache
         | Pointer.Successor | Pointer.Predecessor | Pointer.Finger -> Trace.Ring);
      st.commit_dist <- Id.distance p.Pointer.dst st.target;
      (match Sourceroute.hops p.Pointer.route with
       | hd :: rest when hd = cur -> Some rest
       | _ ->
         (* Route does not start here (cached suffix mismatch): fall back to
            the network map. *)
         (match Linkstate.path st.net.ls cur p.Pointer.dst_router with
          | Some (_ :: rest) -> Some rest
          | Some [] | None -> None))

  let exhausted = function [] -> true | _ :: _ -> false

  let follow st cur = function
    | next :: rest when Graph.has_link st.net.graph cur next ->
      Charge.hop st.net.metrics st.category next;
      st.msgs <- st.msgs + 1;
      st.latency <- st.latency +. Graph.latency st.net.graph cur next;
      st.rev_visited <- next :: st.rev_visited;
      Trace.record st.tracer ~kind:st.commit_kind ~router:next ~level:"intra"
        ~dist:st.commit_dist;
      Walk.Stepped (next, rest)
    | _ :: _ | [] -> Walk.Blocked

  let no_candidate st cur = finish st (Stuck cur)
  let stuck st cur = finish st (Stuck cur)

  (* Recovery exhausted: settle for the best local member. *)
  let settle st cur =
    let eligible =
      List.filter
        (fun (vn : Vnode.t) ->
          vn.Vnode.alive
          && (match vn.Vnode.host_class with
             | Vnode.Ephemeral -> Id.equal vn.Vnode.id st.target
             | Vnode.Stable | Vnode.Router_default -> true)
          &&
          match st.exclude with Some e -> not (Id.equal e vn.Vnode.id) | None -> true)
        st.net.routers.(cur).residents
    in
    match
      Walk.best ~target:st.target ~id_of:(fun (vn : Vnode.t) -> vn.Vnode.id) eligible
    with
    | Some vn when Id.equal vn.Vnode.id st.target -> finish st (Delivered vn)
    | Some vn -> finish st (Predecessor vn)
    | None -> finish st (Stuck cur)
end

module Lookup_walk = Walk.Make (Lookup_substrate)

let lookup ?exclude t ~from ~target ~category ~use_cache =
  let st =
    {
      Lookup_substrate.net = t;
      target;
      category;
      use_cache;
      exclude;
      step_limit = (4 * Graph.n t.graph) + (2 * Ring.cardinal t.oracle) + 16;
      msgs = 0;
      latency = 0.0;
      rev_visited = [ from ];
      commit_src = None;
      commit_kind = Trace.Ring;
      commit_dist = Id.max_value;
      tracer = Trace.builder ();
    }
  in
  Charge.inject t.metrics category from;
  Lookup_walk.run st ~start:from

let find_vnode t id = Hashtbl.find_opt t.vnodes id

let resident_ids t idx =
  List.filter_map
    (fun (vn : Vnode.t) -> if vn.Vnode.alive then Some vn.Vnode.id else None)
    t.routers.(idx).residents

let ring_size t = Ring.cardinal t.oracle

let host_count t =
  Hashtbl.fold
    (fun _ (vn : Vnode.t) acc ->
      match vn.Vnode.host_class with
      | Vnode.Stable | Vnode.Ephemeral -> acc + 1
      | Vnode.Router_default -> acc)
    t.vnodes 0

let router_state_entries t idx =
  let r = t.routers.(idx) in
  List.fold_left
    (fun acc (vn : Vnode.t) -> if vn.Vnode.alive then acc + Vnode.state_entries vn else acc)
    (Hashtbl.length r.attachments) r.residents

let avg_router_state_entries t =
  let total = ref 0 in
  Array.iter (fun r -> total := !total + router_state_entries t r.idx) t.routers;
  float_of_int !total /. float_of_int (Array.length t.routers)

(* -- cache filling ------------------------------------------------------ *)

let cache_route_to t id dst_router visited =
  if t.cfg.cache_control_paths && t.cfg.cache_capacity > 0 then begin
    let rec go = function
      | [] -> ()
      | r :: rest ->
        if r <> dst_router then begin
          let suffix = r :: rest in
          (* The visited list must end at dst_router for the suffix to be a
             usable source route. *)
          match List.rev suffix with
          | last :: _ when last = dst_router ->
            let route = Sourceroute.of_hops suffix in
            let p = Pointer.make Pointer.Cached ~dst:id ~dst_router ~route in
            Pointer_cache.insert t.routers.(r).cache p
          | _ -> ()
        end;
        go rest
    in
    go visited
  end

(* -- repairs ------------------------------------------------------------ *)

(* Ring-walk to the first member that is alive and reachable from [vn]'s
   router: under a partition this yields the per-component ring the zero-ID
   protocol converges to (§3.2). *)
let oracle_successor_of t (vn : Vnode.t) =
  let r = t.oracle in
  let limit = Ring.cardinal r in
  (* One O(log n) search, then O(1) cursor steps over the dead/unreachable
     run — the seed re-ran a tree search per skipped member. *)
  let rec go c steps =
    if steps > limit || Ring.cursor_is_none c then None
    else begin
      let sid = Ring.id_at r c in
      if Id.equal sid vn.Vnode.id then None
      else begin
        let (sv : Vnode.t) = Ring.value_at r c in
        if sv.Vnode.alive && Linkstate.reachable t.ls vn.Vnode.hosted_at sv.Vnode.hosted_at
        then Some (sid, sv)
        else go (Ring.cursor_next r c) (steps + 1)
      end
    end
  in
  go (Ring.cursor_gt vn.Vnode.id r) 0

let oracle_predecessor_of t (vn : Vnode.t) =
  let r = t.oracle in
  let limit = Ring.cardinal r in
  let rec go c steps =
    if steps > limit || Ring.cursor_is_none c then None
    else begin
      let pid = Ring.id_at r c in
      if Id.equal pid vn.Vnode.id then None
      else begin
        let (pv : Vnode.t) = Ring.value_at r c in
        if pv.Vnode.alive && Linkstate.reachable t.ls vn.Vnode.hosted_at pv.Vnode.hosted_at
        then Some (pid, pv)
        else go (Ring.cursor_prev r c) (steps + 1)
      end
    end
  in
  go (Ring.cursor_lt vn.Vnode.id r) 0

let repair_successor t (vn : Vnode.t) =
  let alive (p : Pointer.t) =
    match find_vnode t p.Pointer.dst with
    | Some v -> v.Vnode.alive && Linkstate.reachable t.ls vn.Vnode.hosted_at v.Vnode.hosted_at
    | None -> false
  in
  let survivors = List.filter alive vn.Vnode.succs in
  match survivors with
  | (first : Pointer.t) :: _ ->
    (* Shift the successor group down (§3.2) and confirm with the new head. *)
    Vnode.set_succs vn survivors;
    let _ = charge_spf t Msg.repair vn.Vnode.hosted_at first.Pointer.dst_router in
    ()
  | [] ->
    (* Group exhausted: re-discover via the network map / ring walk. *)
    (match oracle_successor_of t vn with
     | Some (sid, (sv : Vnode.t)) ->
       (match
          make_pointer t Pointer.Successor ~from_router:vn.Vnode.hosted_at ~dst:sid
            ~dst_router:sv.Vnode.hosted_at
        with
        | Some p ->
          Vnode.set_succs vn [ p ];
          let _ = charge_spf t Msg.repair vn.Vnode.hosted_at sv.Vnode.hosted_at in
          let _ = charge_spf t Msg.repair sv.Vnode.hosted_at vn.Vnode.hosted_at in
          ()
        | None -> Vnode.set_succs vn [])
     | None -> Vnode.set_succs vn [])

let repair_predecessor t (vn : Vnode.t) =
  let alive (p : Pointer.t) =
    match find_vnode t p.Pointer.dst with
    | Some v -> v.Vnode.alive && Linkstate.reachable t.ls vn.Vnode.hosted_at v.Vnode.hosted_at
    | None -> false
  in
  let survivors = List.filter alive vn.Vnode.preds in
  match survivors with
  | _ :: _ -> Vnode.set_preds vn survivors
  | [] ->
    (match oracle_predecessor_of t vn with
     | Some (pid, (pv : Vnode.t)) ->
       (match
          make_pointer t Pointer.Predecessor ~from_router:vn.Vnode.hosted_at ~dst:pid
            ~dst_router:pv.Vnode.hosted_at
        with
        | Some p ->
          Vnode.set_preds vn [ p ];
          let _ = charge_spf t Msg.repair vn.Vnode.hosted_at pv.Vnode.hosted_at in
          ()
        | None -> Vnode.set_preds vn [])
     | None -> Vnode.set_preds vn [])

(* -- joins --------------------------------------------------------------- *)

type join_outcome = { vnode : Vnode.t; join_msgs : int; join_latency_ms : float }

let splice_stable t ~gateway (vn : Vnode.t) (pred : Vnode.t) =
  let msgs = ref 0 and latency = ref 0.0 in
  let pred_router = pred.Vnode.hosted_at in
  (* Reply from the predecessor carrying its successor list (becomes ours). *)
  let reply_hops, reply_lat = charge_spf t Msg.join_reply pred_router gateway in
  msgs := !msgs + reply_hops;
  latency := !latency +. reply_lat;
  let inherited =
    List.filter_map
      (fun (p : Pointer.t) ->
        if Id.equal p.Pointer.dst vn.Vnode.id then None
        else
          match find_vnode t p.Pointer.dst with
          | Some (sv : Vnode.t) when sv.Vnode.alive ->
            make_pointer t Pointer.Successor ~from_router:gateway ~dst:p.Pointer.dst
              ~dst_router:sv.Vnode.hosted_at
          | Some _ | None -> None)
      pred.Vnode.succs
  in
  Vnode.set_succs vn inherited;
  (* Trim to group size. *)
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Vnode.set_succs vn (take t.cfg.succ_group_size vn.Vnode.succs);
  (* Predecessor adopts us as its first successor. *)
  (match
     make_pointer t Pointer.Successor ~from_router:pred_router ~dst:vn.Vnode.id
       ~dst_router:gateway
   with
   | Some p -> Vnode.add_succ pred p ~max_group:t.cfg.succ_group_size
   | None -> ());
  (* We adopt the predecessor. *)
  (match
     make_pointer t Pointer.Predecessor ~from_router:gateway ~dst:pred.Vnode.id
       ~dst_router:pred_router
   with
   | Some p -> Vnode.add_pred vn p ~max_group:t.cfg.pred_group_size
   | None -> ());
  (* Notify our successor to adopt us as predecessor. *)
  (match Vnode.first_succ vn with
   | Some (sp : Pointer.t) ->
     (match find_vnode t sp.Pointer.dst with
      | Some (sv : Vnode.t) ->
        let h1, l1 = charge_spf t Msg.join gateway sv.Vnode.hosted_at in
        let h2, _ = charge_spf t Msg.join_reply sv.Vnode.hosted_at gateway in
        msgs := !msgs + h1 + h2;
        latency := !latency +. l1;
        (match
           make_pointer t Pointer.Predecessor ~from_router:sv.Vnode.hosted_at
             ~dst:vn.Vnode.id ~dst_router:gateway
         with
         | Some p -> Vnode.add_pred sv p ~max_group:t.cfg.pred_group_size
         | None -> ())
      | None -> ())
   | None -> ());
  (!msgs, !latency)

let join_host t ~gateway ~id ~cls =
  if gateway < 0 || gateway >= Array.length t.routers then
    invalid_arg "Network.join_host: bad gateway";
  if not (Linkstate.router_alive t.ls gateway) then Error "gateway router is down"
  else if Hashtbl.mem t.vnodes id then Error "identifier already resident"
  else begin
    let r = t.routers.(gateway) in
    match Identity.admit r.auditor id with
    | Error e -> Error e
    | Ok () ->
      let vn = Vnode.create id cls ~hosted_at:gateway in
      let res = lookup t ~from:gateway ~target:id ~category:Msg.join ~use_cache:true in
      (match res.status with
       | Stuck _ ->
         Identity.release r.auditor id;
         Error "join lookup stuck (network partitioned?)"
       | Delivered _ ->
         Identity.release r.auditor id;
         Error "identifier already present in ring"
       | Predecessor pred ->
         Log.debug (fun m ->
             m "join %s at router %d (pred %s)" (Id.to_short_string id) gateway
               (Id.to_short_string pred.Vnode.id));
         r.residents <- vn :: r.residents;
         Hashtbl.replace t.vnodes id vn;
         let msgs = ref res.msgs and latency = ref res.latency_ms in
         (match cls with
          | Vnode.Ephemeral ->
            (* Only a path between the ephemeral host and its predecessor
               (§2.2): the predecessor's router keeps the attachment. *)
            let pred_router = pred.Vnode.hosted_at in
            (match
               make_pointer t Pointer.Predecessor ~from_router:gateway ~dst:pred.Vnode.id
                 ~dst_router:pred_router
             with
             | Some p -> Vnode.set_preds vn [ p ]
             | None -> ());
            Hashtbl.replace t.routers.(pred_router).attachments id gateway;
            let h, l = charge_spf t Msg.join_reply pred_router gateway in
            msgs := !msgs + h;
            latency := !latency +. l
          | Vnode.Stable | Vnode.Router_default ->
            t.oracle <- Ring.add id vn t.oracle;
            let m, l = splice_stable t ~gateway vn pred in
            msgs := !msgs + m;
            latency := !latency +. l;
            (* Control-path caching: the forward walk saw the predecessor's
               identifier; the reply path saw ours. *)
            cache_route_to t pred.Vnode.id pred.Vnode.hosted_at res.visited;
            (match Linkstate.path t.ls pred.Vnode.hosted_at gateway with
             | Some reply_path -> cache_route_to t id gateway reply_path
             | None -> ()));
         Ok { vnode = vn; join_msgs = !msgs; join_latency_ms = !latency })
  end

let join_fresh_host t ~gateway ~cls =
  let kp = Identity.generate t.rng in
  let id = Identity.id_of_keypair kp in
  let auth =
    if t.cfg.authenticate_joins then
      Identity.authenticate t.rng ~claimed_id:id (Identity.public kp) (fun c ->
          Identity.respond kp c)
    else Ok ()
  in
  match auth with
  | Error e -> Error e
  | Ok () ->
    (match join_host t ~gateway ~id ~cls with
     | Ok outcome -> Ok (id, outcome)
     | Error e -> Error e)

(* -- graceful leave ------------------------------------------------------ *)

let leave_host t id =
  match find_vnode t id with
  | None -> Error "no such identifier"
  | Some vn when Vnode.is_default vn -> Error "cannot remove a router's default vnode"
  | Some vn ->
    let gateway = vn.Vnode.hosted_at in
    (* Tear-down messages to every successor and predecessor (§3.2). *)
    let notify (p : Pointer.t) =
      let _ = charge_spf t Msg.teardown gateway p.Pointer.dst_router in
      ()
    in
    List.iter notify vn.Vnode.succs;
    List.iter notify vn.Vnode.preds;
    Log.debug (fun m -> m "leave %s from router %d" (Id.to_short_string id) gateway);
    vn.Vnode.alive <- false;
    Hashtbl.remove t.vnodes id;
    t.oracle <- Ring.remove id t.oracle;
    let r = t.routers.(gateway) in
    r.residents <- List.filter (fun (v : Vnode.t) -> not (Id.equal v.Vnode.id id)) r.residents;
    Identity.release r.auditor id;
    (* Ephemeral attachment cleanup at the predecessor. *)
    (match vn.Vnode.preds with
     | (p : Pointer.t) :: _ -> Hashtbl.remove t.routers.(p.Pointer.dst_router).attachments id
     | [] -> ());
    (* Directed flood clearing cached state for this identifier. *)
    let flooded = Hashtbl.create 16 in
    Array.iter
      (fun r' ->
        match Pointer_cache.find r'.cache id with
        | Some _ ->
          if not (Hashtbl.mem flooded r'.idx) then begin
            Hashtbl.add flooded r'.idx ();
            let _ = charge_spf t Msg.directed_flood gateway r'.idx in
            Pointer_cache.remove r'.cache id
          end
        | None -> ())
      t.routers;
    (* Neighbours repair around the gap.  Tear-downs go to every ring
       member that may hold group state for the departed identifier — the
       [succ_group_size] members counter-clockwise and [pred_group_size]
       members clockwise (the "routers holding predecessors of ida" of
       §3.2) — and the message carries the departed vnode's own
       successor/predecessor lists so the immediate neighbours learn members
       only it knew about before shifting their groups. *)
    let collect step k =
      let rec go acc cur k =
        if k = 0 then List.rev acc
        else
          match step cur t.oracle with
          | Some (nid, (nv : Vnode.t)) when not (Id.equal nid id) ->
            if List.exists (fun (v : Vnode.t) -> Id.equal v.Vnode.id nid) acc then
              List.rev acc
            else go (nv :: acc) nid (k - 1)
          | Some _ | None -> List.rev acc
      in
      go [] id k
    in
    let ccw = collect Ring.predecessor t.cfg.succ_group_size in
    let cw = collect Ring.successor t.cfg.pred_group_size in
    let is_dead (p : Pointer.t) = Id.equal p.Pointer.dst id in
    List.iter
      (fun (pv : Vnode.t) ->
        let head_was_dead =
          match Vnode.first_succ pv with
          | Some (p : Pointer.t) -> Id.equal p.Pointer.dst id
          | None -> false
        in
        let dropped = Vnode.drop_pointers_if pv is_dead in
        if dropped > 0 || head_was_dead then begin
          let _ = charge_spf t Msg.teardown gateway pv.Vnode.hosted_at in
          (* Hand over the departed vnode's successors. *)
          List.iter
            (fun (sp : Pointer.t) ->
              match find_vnode t sp.Pointer.dst with
              | Some (sv : Vnode.t) when sv.Vnode.alive ->
                (match
                   make_pointer t Pointer.Successor ~from_router:pv.Vnode.hosted_at
                     ~dst:sp.Pointer.dst ~dst_router:sv.Vnode.hosted_at
                 with
                 | Some fresh -> Vnode.add_succ pv fresh ~max_group:t.cfg.succ_group_size
                 | None -> ())
              | Some _ | None -> ())
            vn.Vnode.succs;
          if head_was_dead then repair_successor t pv
        end)
      ccw;
    List.iter
      (fun (sv : Vnode.t) ->
        let head_was_dead =
          match Vnode.first_pred sv with
          | Some (p : Pointer.t) -> Id.equal p.Pointer.dst id
          | None -> false
        in
        let dropped = Vnode.drop_pointers_if sv is_dead in
        if dropped > 0 || head_was_dead then begin
          let _ = charge_spf t Msg.teardown gateway sv.Vnode.hosted_at in
          List.iter
            (fun (pp : Pointer.t) ->
              match find_vnode t pp.Pointer.dst with
              | Some (pv : Vnode.t) when pv.Vnode.alive ->
                (match
                   make_pointer t Pointer.Predecessor ~from_router:sv.Vnode.hosted_at
                     ~dst:pp.Pointer.dst ~dst_router:pv.Vnode.hosted_at
                 with
                 | Some fresh -> Vnode.add_pred sv fresh ~max_group:t.cfg.pred_group_size
                 | None -> ())
              | Some _ | None -> ())
            vn.Vnode.preds;
          if head_was_dead then repair_predecessor t sv
        end)
      cw;
    Ok ()

(* -- partition merge ----------------------------------------------------- *)

let rejoin_ring t (vn : Vnode.t) ~category =
  let gateway = vn.Vnode.hosted_at in
  let res =
    lookup ~exclude:vn.Vnode.id t ~from:gateway ~target:vn.Vnode.id ~category
      ~use_cache:true
  in
  match res.status with
  | Predecessor pred when not (Id.equal pred.Vnode.id vn.Vnode.id) ->
    Vnode.set_succs vn [];
    Vnode.set_preds vn [];
    let m, _ = splice_stable t ~gateway vn pred in
    res.msgs + m
  | Predecessor _ | Delivered _ | Stuck _ -> res.msgs

(* Ring-order stabilisation: the zero-ID repairs its successor, "who in turn
   repair their successors, and so on until the rings are merged" (§3.2).
   Every member whose successor pointer disagrees with the per-component
   expectation re-points, charging one round trip; groups are pruned of dead
   entries.  Returns messages charged. *)
let stabilize t ~category =
  let before = Metrics.total t.metrics in
  let members = Ring.to_list t.oracle in
  List.iter
    (fun (_, (vn : Vnode.t)) ->
      if vn.Vnode.alive then begin
        let dead (p : Pointer.t) =
          Id.equal p.Pointer.dst vn.Vnode.id
          ||
          match find_vnode t p.Pointer.dst with
          | Some (dv : Vnode.t) ->
            (not dv.Vnode.alive)
            || not (Linkstate.reachable t.ls vn.Vnode.hosted_at dv.Vnode.hosted_at)
          | None -> true
        in
        ignore (Vnode.drop_pointers_if vn dead);
        match oracle_successor_of t vn with
        | None -> ()
        | Some (sid, (sv : Vnode.t)) ->
          let ok =
            match Vnode.first_succ vn with
            | Some (p : Pointer.t) -> Id.equal p.Pointer.dst sid
            | None -> false
          in
          if not ok then begin
            (match
               make_pointer t Pointer.Successor ~from_router:vn.Vnode.hosted_at ~dst:sid
                 ~dst_router:sv.Vnode.hosted_at
             with
             | Some p ->
               Vnode.add_succ vn p ~max_group:t.cfg.succ_group_size;
               let _ = charge_spf t category vn.Vnode.hosted_at sv.Vnode.hosted_at in
               let _ = charge_spf t category sv.Vnode.hosted_at vn.Vnode.hosted_at in
               (match
                  make_pointer t Pointer.Predecessor ~from_router:sv.Vnode.hosted_at
                    ~dst:vn.Vnode.id ~dst_router:vn.Vnode.hosted_at
                with
                | Some bp -> Vnode.add_pred sv bp ~max_group:t.cfg.pred_group_size
                | None -> ())
             | None -> ())
          end
      end)
    members;
  Metrics.total t.metrics - before

(** Intradomain ROFL: ring construction, joins, and greedy lookup.

    One [t] models a single AS: a router topology with its link-state
    substrate, one default virtual node per router (joined by flooding at
    bootstrap, §3.1), and a growing population of host identifiers resident
    at gateway routers.  Pointer caches at every router are filled from
    control traffic only, as in the paper's experiments (§6.1).

    The record types are deliberately transparent: {!Forward},
    {!Failure} and {!Invariant} operate on the same state. *)

module Id = Rofl_idspace.Id
module Ring = Rofl_idspace.Ring
module Vnode = Rofl_core.Vnode
module Pointer = Rofl_core.Pointer
module Pointer_cache = Rofl_core.Pointer_cache

type config = {
  succ_group_size : int;     (** successors kept per vnode (>= 1) *)
  pred_group_size : int;
  cache_capacity : int;      (** pointer-cache entries per router *)
  cache_control_paths : bool;(** fill caches from join/control traffic *)
  authenticate_joins : bool; (** run the self-certifying handshake on join *)
  sybil_limit : int;         (** max resident IDs per router (audit, §2.1) *)
}

val default_config : config
(** 4 successors, 2 predecessors, 1024 cache entries, caching and
    authentication on, sybil limit 100k. *)

type router = {
  idx : int;
  default_vnode : Vnode.t;
  mutable residents : Vnode.t list; (** alive vnodes hosted here, incl. default *)
  cache : Pointer_cache.t;
  auditor : Rofl_crypto.Identity.sybil_auditor;
  (** ephemeral identifiers attached below this router's resident
      predecessors: id -> router currently hosting the ephemeral host *)
  attachments : (Id.t, int) Hashtbl.t;
}

type t = {
  graph : Rofl_topology.Graph.t;
  ls : Rofl_linkstate.Linkstate.t;
  rng : Rofl_util.Prng.t;
  cfg : config;
  routers : router array;
  metrics : Rofl_netsim.Metrics.t;
  vnodes : (Id.t, Vnode.t) Hashtbl.t; (** every alive vnode, any class *)
  mutable oracle : Vnode.t Ring.t;    (** ring members (default + stable) *)
  mutable bootstrap_msgs : int;       (** flood cost of router bootstrap *)
}

val create : ?cfg:config -> rng:Rofl_util.Prng.t -> Rofl_topology.Graph.t -> t
(** Build the AS: spawns and rings the default virtual nodes of every router,
    charging their bootstrap floods to the [flood] category. *)

val router_id : int -> Id.t
(** Deterministic router-ID for router index [i] (hash-derived, uniform). *)

type lookup_status =
  | Delivered of Vnode.t    (** exact identifier found, resident here *)
  | Predecessor of Vnode.t  (** closest preceding ring member *)
  | Stuck of int            (** no progress possible at this router *)

type lookup_result = {
  status : lookup_status;
  msgs : int;          (** physical messages charged *)
  latency_ms : float;  (** serial propagation latency of the walk *)
  visited : int list;  (** routers traversed, in order, inclusive of start *)
  trace : Rofl_routing.Trace.t; (** per-hop events, in walk order *)
}

val lookup :
  ?exclude:Id.t ->
  t -> from:int -> target:Id.t -> category:string -> use_cache:bool -> lookup_result
(** Greedy walk from a router towards [target]: at each router the closest
    non-overshooting identifier known (resident IDs, their successor
    pointers, pointer-cache) picks the next source route (Algorithm 2
    generalised to termination at the predecessor).  [exclude] removes one
    identifier from candidacy — used when an existing member re-joins and
    must not find itself. *)

type join_outcome = {
  vnode : Vnode.t;
  join_msgs : int;     (** messages charged for this join *)
  join_latency_ms : float;
}

val join_host :
  t -> gateway:int -> id:Id.t -> cls:Vnode.host_class -> (join_outcome, string) result
(** Algorithm 1: authenticate (optional), spawn the vnode, locate the
    predecessor, splice succ/pred state, notify the successor, fill caches
    along the control paths.  Ephemeral hosts only establish the
    predecessor attachment (§2.2). *)

val join_fresh_host :
  t -> gateway:int -> cls:Vnode.host_class -> (Id.t * join_outcome, string) result
(** Generate a keypair, derive the self-certifying identifier, and join with
    the full handshake. *)

val leave_host : t -> Id.t -> (unit, string) result
(** Graceful leave: like a failure but without detection timeouts; tears
    down and repairs neighbours (charged to [teardown]/[repair]). *)

val find_vnode : t -> Id.t -> Vnode.t option

val spf_route : t -> int -> int -> Rofl_core.Sourceroute.t option
(** Link-state shortest route between two routers. *)

val make_pointer :
  t -> Pointer.kind -> from_router:int -> dst:Id.t -> dst_router:int -> Pointer.t option
(** Pointer with a fresh SPF source route; [None] if unreachable. *)

val cache_route_to : t -> Id.t -> int -> int list -> unit
(** [cache_route_to t id dst_router visited] lets every router along
    [visited] cache a pointer to [id] (suffix source routes), when
    [cache_control_paths] is on. *)

val resident_ids : t -> int -> Id.t list
(** Identifiers resident at a router (including the default vnode's). *)

val ring_size : t -> int
(** Ring members (stable + default vnodes). *)

val host_count : t -> int
(** Stable + ephemeral host identifiers currently alive. *)

val router_state_entries : t -> int -> int
(** Ring-state pointer entries pinned at a router (vnode succ/pred lists +
    ephemeral attachments) — the §6.2 memory metric. *)

val avg_router_state_entries : t -> float

val stabilize : t -> category:string -> int
(** Ring-order stabilisation sweep (the §3.2 zero-ID chain repair): every
    member whose successor pointer disagrees with its component's expected
    successor re-points, charging a repair round trip; dead and unreachable
    group entries are pruned.  Idempotent once converged (then it charges
    nothing).  Returns messages charged under [category]. *)

val rejoin_ring : t -> Vnode.t -> category:string -> int
(** Re-run the ring splice for an already-resident member (partition merge,
    §3.2): locate its current predecessor — excluding itself — and splice
    succ/pred state afresh.  Returns messages charged under [category]. *)

val repair_successor : t -> Vnode.t -> unit
(** Restore a vnode's successor state after its first successor died: shift
    the successor group if possible, otherwise re-lookup (charged to
    [repair]). *)

val repair_predecessor : t -> Vnode.t -> unit

module Id = Rofl_idspace.Id
module Ring = Rofl_idspace.Ring
module Vnode = Rofl_core.Vnode
module Pointer = Rofl_core.Pointer
module Pointer_cache = Rofl_core.Pointer_cache
module Msg = Rofl_core.Msg
module Graph = Rofl_topology.Graph
module Linkstate = Rofl_linkstate.Linkstate
module Metrics = Rofl_netsim.Metrics
module Charge = Rofl_routing.Charge
module Identity = Rofl_crypto.Identity

let total (t : Network.t) = Metrics.total t.Network.metrics

let all_vnodes (t : Network.t) =
  Hashtbl.fold (fun _ vn acc -> vn :: acc) t.Network.vnodes []

(* Drop every pointer that leads to or through dead equipment, charging
   tear-downs along the surviving prefix of each path, then repair. *)
let teardown_and_repair (t : Network.t) ~doomed =
  List.iter
    (fun (vn : Vnode.t) ->
      if vn.Vnode.alive then begin
        let dropped = Vnode.drop_pointers_if vn doomed in
        if dropped > 0 then begin
          Charge.bulk t.Network.metrics Msg.teardown dropped;
          (match vn.Vnode.host_class with
           | Vnode.Stable | Vnode.Router_default ->
             if vn.Vnode.succs = [] then Network.repair_successor t vn;
             if vn.Vnode.preds = [] then Network.repair_predecessor t vn
           | Vnode.Ephemeral ->
             (* Re-attach below the current ring predecessor. *)
             let res =
               Network.lookup t ~from:vn.Vnode.hosted_at ~target:vn.Vnode.id
                 ~category:Msg.repair ~use_cache:true
             in
             (match res.Network.status with
              | Network.Predecessor pred ->
                (match
                   Network.make_pointer t Pointer.Predecessor
                     ~from_router:vn.Vnode.hosted_at ~dst:pred.Vnode.id
                     ~dst_router:pred.Vnode.hosted_at
                 with
                 | Some p -> Vnode.set_preds vn [ p ]
                 | None -> ());
                Hashtbl.replace
                  t.Network.routers.(pred.Vnode.hosted_at).Network.attachments
                  vn.Vnode.id vn.Vnode.hosted_at
              | Network.Delivered _ | Network.Stuck _ -> ()))
        end
      end)
    (all_vnodes t)

let purge_caches (t : Network.t) ~doomed =
  Array.iter
    (fun (r : Network.router) -> ignore (Pointer_cache.drop_if r.Network.cache doomed))
    t.Network.routers

let fail_host (t : Network.t) id =
  let before = total t in
  (* Mechanically identical to a graceful leave, except the gateway only
     notices through a session timeout; the teardown/repair traffic is the
     same (§3.2). *)
  match Network.leave_host t id with
  | Ok () -> Ok (total t - before)
  | Error e -> Error e

let charge_lsa (t : Network.t) category =
  Charge.bulk t.Network.metrics category (Linkstate.lsa_flood_cost t.Network.ls)

let fail_router (t : Network.t) idx ~pick_gateway =
  let before = total t in
  let r = t.Network.routers.(idx) in
  let resident_hosts =
    List.filter (fun (vn : Vnode.t) -> not (Vnode.is_default vn)) r.Network.residents
  in
  let orphan_attachments =
    Hashtbl.fold (fun id host acc -> (id, host) :: acc) r.Network.attachments []
  in
  (* The link-state layer floods the failure. *)
  Linkstate.fail_router t.Network.ls idx;
  charge_lsa t Msg.flood;
  (* Everything resident here is gone. *)
  let kill (vn : Vnode.t) =
    vn.Vnode.alive <- false;
    Hashtbl.remove t.Network.vnodes vn.Vnode.id;
    t.Network.oracle <- Ring.remove vn.Vnode.id t.Network.oracle;
    Identity.release r.Network.auditor vn.Vnode.id
  in
  List.iter kill r.Network.residents;
  r.Network.residents <- [];
  Hashtbl.reset r.Network.attachments;
  (* Remote state referencing the dead router tears down and repairs. *)
  let doomed (p : Pointer.t) = p.Pointer.dst_router = idx || Pointer.uses_router p idx in
  purge_caches t ~doomed;
  teardown_and_repair t ~doomed;
  (* Hosts fail over to the next router on their agreed list. *)
  List.iter
    (fun (vn : Vnode.t) ->
      match pick_gateway vn with
      | Some gw when Linkstate.router_alive t.Network.ls gw ->
        (match
           Network.join_host t ~gateway:gw ~id:vn.Vnode.id ~cls:vn.Vnode.host_class
         with
         | Ok _ | Error _ -> ())
      | Some _ | None -> ())
    resident_hosts;
  (* Ephemeral hosts attached below predecessors hosted here re-attach. *)
  List.iter
    (fun (id, host_router) ->
      match Network.find_vnode t id with
      | Some (vn : Vnode.t) when vn.Vnode.alive ->
        let res =
          Network.lookup t ~from:host_router ~target:id ~category:Msg.repair
            ~use_cache:true
        in
        (match res.Network.status with
         | Network.Predecessor pred ->
           Hashtbl.replace
             t.Network.routers.(pred.Vnode.hosted_at).Network.attachments id host_router
         | Network.Delivered _ | Network.Stuck _ -> ())
      | Some _ | None -> ())
    orphan_attachments;
  ignore (Network.stabilize t ~category:Msg.repair);
  total t - before

let restore_router (t : Network.t) idx =
  let before = total t in
  Linkstate.restore_router t.Network.ls idx;
  charge_lsa t Msg.flood;
  let r = t.Network.routers.(idx) in
  let vn = Vnode.create (Network.router_id idx) Vnode.Router_default ~hosted_at:idx in
  r.Network.residents <- [ vn ];
  Hashtbl.replace t.Network.vnodes vn.Vnode.id vn;
  t.Network.oracle <- Ring.add vn.Vnode.id vn t.Network.oracle;
  ignore (Network.rejoin_ring t vn ~category:Msg.repair);
  ignore (Network.stabilize t ~category:Msg.repair);
  total t - before

let fail_link (t : Network.t) u v =
  let before = total t in
  Linkstate.fail_link t.Network.ls u v;
  charge_lsa t Msg.flood;
  let crosses (p : Pointer.t) = Pointer.uses_link p u v in
  purge_caches t ~doomed:crosses;
  (* The network map reroutes ring pointers transparently: refresh source
     routes that crossed the link; tear down only if now unreachable. *)
  List.iter
    (fun (vn : Vnode.t) ->
      if vn.Vnode.alive then begin
        let reroute (p : Pointer.t) =
          if crosses p then
            match
              Network.make_pointer t p.Pointer.kind ~from_router:vn.Vnode.hosted_at
                ~dst:p.Pointer.dst ~dst_router:p.Pointer.dst_router
            with
            | Some fresh -> Some fresh
            | None -> None
          else Some p
        in
        vn.Vnode.succs <- List.filter_map reroute vn.Vnode.succs;
        vn.Vnode.preds <- List.filter_map reroute vn.Vnode.preds;
        if vn.Vnode.succs = [] && not (Ring.is_empty t.Network.oracle) then
          Network.repair_successor t vn
      end)
    (all_vnodes t);
  total t - before

let restore_link (t : Network.t) u v =
  let before = total t in
  Linkstate.restore_link t.Network.ls u v;
  charge_lsa t Msg.flood;
  total t - before

let cut_links (t : Network.t) routers =
  let inside = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace inside r ()) routers;
  let cut = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun (v, _) ->
          if not (Hashtbl.mem inside v) && Linkstate.link_alive t.Network.ls r v then begin
            Linkstate.fail_link t.Network.ls r v;
            cut := (r, v) :: !cut
          end)
        (Graph.neighbors t.Network.graph r))
    routers;
  !cut

let disconnect_routers (t : Network.t) routers =
  let before = total t in
  let _cut = cut_links t routers in
  charge_lsa t Msg.flood;
  (* Zero-ID advertisements piggyback on the link-state flood in each
     component; charged once over the surviving links. *)
  charge_lsa t Msg.zero_id;
  let doomed (p : Pointer.t) =
    not (Rofl_core.Sourceroute.is_valid t.Network.ls p.Pointer.route)
    ||
    match Network.find_vnode t p.Pointer.dst with
    | Some (dv : Vnode.t) -> not dv.Vnode.alive
    | None -> true
  in
  purge_caches t ~doomed;
  teardown_and_repair t ~doomed;
  (* Per-component consistency: every member whose successor is now across
     the cut re-points within its component. *)
  List.iter
    (fun (vn : Vnode.t) ->
      if vn.Vnode.alive then begin
        match vn.Vnode.host_class with
        | Vnode.Stable | Vnode.Router_default ->
          let ok =
            match Vnode.first_succ vn with
            | Some (p : Pointer.t) ->
              Linkstate.reachable t.Network.ls vn.Vnode.hosted_at p.Pointer.dst_router
            | None -> false
          in
          if not ok then Network.repair_successor t vn;
          let pred_ok =
            match Vnode.first_pred vn with
            | Some (p : Pointer.t) ->
              Linkstate.reachable t.Network.ls vn.Vnode.hosted_at p.Pointer.dst_router
            | None -> false
          in
          if not pred_ok then Network.repair_predecessor t vn
        | Vnode.Ephemeral -> ()
      end)
    (all_vnodes t);
  ignore (Network.stabilize t ~category:Msg.repair);
  total t - before

let reconnect_routers (t : Network.t) routers =
  let before = total t in
  let inside = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace inside r ()) routers;
  List.iter
    (fun r ->
      List.iter
        (fun (v, _) ->
          if not (Hashtbl.mem inside v) && not (Linkstate.link_alive t.Network.ls r v)
          then Linkstate.restore_link t.Network.ls r v)
        (Graph.neighbors t.Network.graph r))
    routers;
  charge_lsa t Msg.flood;
  (* The zero-ID advertisement reveals the other ring and triggers the
     merge (§3.2): members of the reconnected component re-splice. *)
  charge_lsa t Msg.zero_id;
  List.iter
    (fun r ->
      List.iter
        (fun (vn : Vnode.t) ->
          if vn.Vnode.alive then begin
            match vn.Vnode.host_class with
            | Vnode.Stable | Vnode.Router_default ->
              ignore (Network.rejoin_ring t vn ~category:Msg.repair)
            | Vnode.Ephemeral -> ()
          end)
        t.Network.routers.(r).Network.residents)
    routers;
  (* Main-side members whose true successor lives in the reconnected set got
     fixed by the splices above; verify and repair any stragglers. *)
  List.iter
    (fun (vn : Vnode.t) ->
      if vn.Vnode.alive && vn.Vnode.succs = [] then Network.repair_successor t vn)
    (all_vnodes t);
  ignore (Network.stabilize t ~category:Msg.repair);
  total t - before

let mobile_rehome (t : Network.t) id ~new_gateway =
  let before = total t in
  match Network.find_vnode t id with
  | None -> Error "no such identifier"
  | Some (vn : Vnode.t) when Vnode.is_default vn -> Error "cannot move a router's ID"
  | Some (vn : Vnode.t) ->
    let cls = vn.Vnode.host_class in
    (match Network.leave_host t id with
     | Error e -> Error e
     | Ok () ->
       (match Network.join_host t ~gateway:new_gateway ~id ~cls with
        | Ok _ -> Ok (total t - before)
        | Error e -> Error e))

(** Discrete-event engine.

    Drives the latency experiments (join completion time, Fig. 5c) and any
    scenario where relative timing matters: events are closures scheduled at
    absolute simulated times; [run] executes them in time order.  Ties run in
    scheduling order, so executions are deterministic.

    One engine is one event partition.  A single-partition simulation uses it
    directly; the sharded simulator runs one engine per shard under
    {!Shard}, which relies on {!schedule_keyed}'s content-derived event keys
    to keep the merged execution order independent of the partitioning. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in milliseconds. *)

val schedule : t -> delay_ms:float -> (unit -> unit) -> unit
(** Schedule a closure [delay_ms] after the current time (>= 0).

    Same-timestamp events pop in FIFO scheduling order — including events
    scheduled from inside a running callback at the current time, which run
    after every already-queued event with that timestamp.  Simulations may
    rely on this: a message fan-out scheduled in one pass is processed in
    emission order. *)

val schedule_at : t -> time_ms:float -> (unit -> unit) -> unit
(** Schedule at an absolute time (must not be in the past). *)

val schedule_keyed : t -> time_ms:float -> rail:int -> seq:int -> (unit -> unit) -> unit
(** Schedule under the full event key [(time_ms, rail, seq)].  Same-time
    events pop in [(rail, seq)] order rather than scheduling order, so the
    execution order is a function of the event keys alone — two engines
    holding the same keyed events drain identically no matter how the events
    were routed to them.  Rails are non-negative (the sharded protocol uses
    the acting node's router id); plain {!schedule} events sit on rail [-1]
    and drain first among ties.  Within one rail, [seq] must be strictly
    monotone across pushes. *)

val run : t -> unit
(** Execute events until the queue drains. *)

val run_until : t -> float -> unit
(** Execute events with time <= the horizon; pending later events remain.
    The clock advances to at least the horizon, and the monitor (if any)
    observes the boundary even when no event fired — so checkpoint audits
    keep seeing time pass across quiescent stretches. *)

val pending : t -> int
(** In-flight events: scheduled but not yet executed. *)

val next_time : t -> float option
(** Timestamp of the earliest pending event, if any — what a shard
    coordinator needs to pick the next conservative window. *)

val peak_pending : t -> int
(** High-water mark of the event queue over the engine's lifetime — the
    overload signal a churn campaign watches (a queue that only grows means
    stabilisation is falling behind the event rate).  Not reset by
    {!clear}; see {!reset}. *)

val scheduled_total : t -> int
(** Cumulative number of events ever scheduled (executed or pending).
    Not reset by {!clear}; see {!reset}. *)

val executed_total : t -> int
(** Cumulative number of events executed. *)

val digest : t -> int
(** Order-insensitive fingerprint over the keys of every executed event: the
    sum of per-event hashes of [(time, rail, seq)].  Two runs executed the
    same multiset of event keys iff their digests agree, and per-engine
    digests sum across shards into a partition-independent fingerprint. *)

val clear : t -> unit
(** Drop queued events.  Statistics ({!peak_pending}, {!scheduled_total},
    {!executed_total}, {!digest}), the clock and the monitor survive — this
    truncates the future, not the record of the past. *)

val reset : t -> unit
(** Return the engine to its freshly-{!create}d state: queued events
    dropped, clock back to 0, peak/scheduled/executed counters and the
    digest zeroed, monitor detached.  Reusing an engine across campaign
    phases without [reset] leaks the previous phase's statistics into the
    next report. *)

val set_monitor : t -> (float -> unit) -> unit
(** Install an observer invoked after every executed event with the current
    simulated time — the ring doctor's checkpoint hook.  The observer runs
    {e outside} the event queue: monitoring via scheduled events would shift
    the FIFO tie-breaking sequence numbers and perturb every same-timestamp
    ordering, breaking byte-identical determinism.  The observer must not
    schedule events, raise, or mutate simulation state; at most one is
    active (a second call replaces the first). *)

val clear_monitor : t -> unit

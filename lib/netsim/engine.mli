(** Discrete-event engine.

    Drives the latency experiments (join completion time, Fig. 5c) and any
    scenario where relative timing matters: events are closures scheduled at
    absolute simulated times; [run] executes them in time order.  Ties run in
    scheduling order, so executions are deterministic. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulated time in milliseconds. *)

val schedule : t -> delay_ms:float -> (unit -> unit) -> unit
(** Schedule a closure [delay_ms] after the current time (>= 0).

    Same-timestamp events pop in FIFO scheduling order — including events
    scheduled from inside a running callback at the current time, which run
    after every already-queued event with that timestamp.  Simulations may
    rely on this: a message fan-out scheduled in one pass is processed in
    emission order. *)

val schedule_at : t -> time_ms:float -> (unit -> unit) -> unit
(** Schedule at an absolute time (must not be in the past). *)

val run : t -> unit
(** Execute events until the queue drains. *)

val run_until : t -> float -> unit
(** Execute events with time <= the horizon; pending later events remain.
    The clock advances to at least the horizon, and the monitor (if any)
    observes the boundary even when no event fired — so checkpoint audits
    keep seeing time pass across quiescent stretches. *)

val pending : t -> int
(** In-flight events: scheduled but not yet executed. *)

val peak_pending : t -> int
(** High-water mark of the event queue over the engine's lifetime — the
    overload signal a churn campaign watches (a queue that only grows means
    stabilisation is falling behind the event rate).  Not reset by
    {!clear}. *)

val scheduled_total : t -> int
(** Cumulative number of events ever scheduled (executed or pending). *)

val clear : t -> unit

val set_monitor : t -> (float -> unit) -> unit
(** Install an observer invoked after every executed event with the current
    simulated time — the ring doctor's checkpoint hook.  The observer runs
    {e outside} the event queue: monitoring via scheduled events would shift
    the FIFO tie-breaking sequence numbers and perturb every same-timestamp
    ordering, breaking byte-identical determinism.  The observer must not
    schedule events, raise, or mutate simulation state; at most one is
    active (a second call replaces the first). *)

val clear_monitor : t -> unit

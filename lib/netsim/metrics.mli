(** Message and load accounting for the simulations.

    Every control or data message a protocol sends is charged here, tagged
    with a category, so experiments can report join overhead, repair
    overhead, and per-router load exactly the way the paper does. *)

type t

val create : routers:int -> t
(** [routers] sizes the per-router load table. *)

val incr : t -> string -> int -> unit
(** [incr m category k] adds [k] messages to a category. *)

val handle : t -> string -> int ref
(** Interned counter cell for a category: hoists the hashtable probe out of
    hot loops so per-hop charging is allocation-free.  The same cell
    {!charge_hop}/{!incr} update — counts stay coherent however they are
    charged. *)

val charge_hop_via : t -> int ref -> int -> unit
(** {!charge_hop} through a pre-interned {!handle}: bumps the cell and the
    router's load without touching the category table.  Allocation-free. *)

val charge_load : t -> int -> unit
(** Bump only the per-router load table — the message-injection charge
    ([Charge.inject] nets out to exactly this).  Allocation-free. *)

val charge_hop : t -> string -> int -> unit
(** [charge_hop m category router] counts one message traversing [router]
    under [category], and adds it to that router's load. *)

val charge_path : t -> string -> int list -> unit
(** Charge a message travelling a hop-by-hop router path: one message per
    link traversed, and load at every router the message transits
    (intermediate and endpoints). *)

val get : t -> string -> int

val total : t -> int
(** Sum over all categories. *)

val categories : t -> (string * int) list
(** Sorted by category name. *)

val router_load : t -> int array
(** Per-router message-traversal counts (copy). *)

val charge_wasted : t -> int -> unit
(** Duplicate-work accounting for α-parallel lookups: ring hops walked by a
    losing branch whose answer was discarded.  Kept apart from the message
    categories — the hops were already charged there when they happened;
    this ledger answers "how much of that traffic was redundancy?". *)

val charge_cancelled : t -> int -> unit
(** Count cooperative cancellations issued to in-flight sibling branches
    once a lookup's first branch succeeds. *)

val wasted_hops : t -> int

val cancellations : t -> int

val charge_join_reject : t -> unit
(** Count a join claim that failed challenge/response verification and was
    turned away at the gateway — the headline defense of the attack lab. *)

val charge_promo_reject : t -> unit
(** Count a successor-list backup that failed verification (absent, forged,
    or unresponsive) during failover promotion. *)

val join_rejects : t -> int

val promo_rejects : t -> int

val reset : t -> unit

val merge_into : dst:t -> t -> unit
(** Add counts of another metrics object (router tables must be same size). *)

(** Sharded discrete-event coordinator: conservative time windows.

    Partitions a simulation across K {!Engine} instances and runs them on a
    {!Rofl_util.Pool} in lock-step windows.  The caller supplies
    [window_ms], a positive lower bound on the latency of any message that
    crosses the partition (for the ROFL simulator: the minimum latency over
    links between routers owned by different shards).  Each window executes
    every shard up to a barrier [b <= earliest_pending + window_ms], then
    flushes cross-shard messages buffered during the window — conservatism
    guarantees each lands at or after [b], never in another shard's past.

    Runs are byte-identical at any shard count: events carry content-derived
    keys [(time, rail, seq)] (see {!Engine.schedule_keyed}) so each engine's
    pop order is a function of the event set alone, and observables — the
    monitor and the global queue-depth high-water mark — are sampled only at
    K-independent instants (global-event times and run horizons), never at
    the K-dependent interior barriers. *)

type t

val create : ?pool:Rofl_util.Pool.t -> shards:int -> window_ms:float -> unit -> t
(** [create ?pool ~shards ~window_ms ()] builds a coordinator over [shards]
    fresh engines.  [window_ms] must be positive when [shards > 1]
    ([infinity] is the natural value for a single shard, where no message
    ever crosses).  Without a [pool] (or with a 1-job pool) windows run
    sequentially — same results, no parallelism. *)

val shards : t -> int

val engine : t -> int -> Engine.t
(** The engine owning partition [i].  During a window, partition [i]'s
    events run on one pool domain and must touch only shard-[i] state;
    outside [run_until] the caller may inspect engines freely. *)

val window_ms : t -> float

val now : t -> float
(** The merged barrier clock: every shard has executed all events at or
    before this time, and no cross-shard message is in flight. *)

val send :
  t -> src:int -> dst:int -> time_ms:float -> rail:int -> seq:int ->
  (unit -> unit) -> unit
(** [send t ~src ~dst ~time_ms ~rail ~seq f] schedules [f] on shard [dst]'s
    engine under key [(time_ms, rail, seq)].  [src] is the shard whose
    window the call is made from, or [-1] from global context (inside an
    {!at_global} closure, or outside [run_until] entirely).  Cross-shard
    sends ([src >= 0], [src <> dst]) are buffered in shard [src]'s outbox
    until the barrier; the caller must guarantee [time_ms] is at least
    [window_ms] after the emitting event — true by construction when
    [window_ms] lower-bounds cross-partition latency. *)

val at_global :
  t -> time_ms:float -> (unit -> unit) -> unit
(** Schedule a closure at an exact simulated time in {e global} context:
    every shard is parked at a barrier at [time_ms] when it runs, so it may
    read and mutate state across all shards and [send] with [src:-1].
    Globals at one time fire in insertion order.  Global times are sync
    points — the monitor observes after the last global at each time.  A
    global rescheduling itself must pick a strictly later time. *)

val run_until : t -> float -> unit
(** Execute all events and globals with time <= the horizon.  The merged
    clock advances to at least the horizon, and the monitor observes the
    horizon boundary even when nothing fired (matching
    {!Engine.run_until}'s idle-boundary contract). *)

val pending : t -> int
(** Total in-flight events across all shards. *)

val peak_global : t -> int
(** High-water mark of total pending events, sampled at sync points only —
    the K-independent replacement for {!Engine.peak_pending} in campaign
    reports. *)

val scheduled_total : t -> int

val executed_total : t -> int

val fingerprint : t -> int
(** Sum of per-engine executed-event digests ({!Engine.digest}): an
    order-insensitive fingerprint of every executed event key, identical
    across shard counts iff the runs executed the same events. *)

val set_monitor : t -> (float -> unit) -> unit
(** Coordinator-level observer, invoked with the merged barrier clock at
    sync points (global-event times and run horizons).  This is where the
    ring doctor attaches under sharding: per-engine monitors would fire at
    K-dependent interior barriers and race with other shards' domains. *)

val clear_monitor : t -> unit

type stats = {
  windows : int;        (* synchronisation windows executed *)
  executed : int array; (* events executed, per shard *)
  busy_s : float array; (* wall-clock seconds each shard spent executing *)
  stall_s : float;      (* summed seconds shards idled at window barriers *)
  elapsed_s : float;    (* wall-clock seconds spent inside [run_until] *)
}
(** Wall-clock execution profile.  K-dependent by nature — report it beside
    results, never inside them. *)

val stats : t -> stats

module Pool = Rofl_util.Pool
module Heap = Rofl_util.Heap

(* Conservative parallel discrete-event coordinator.

   K engines hold disjoint event partitions.  Time advances in windows
   [clock, b): every engine executes its own events up to [b] (in parallel
   on the pool), then cross-partition messages buffered during the window
   are flushed into their destination engines.  The window bound is
   conservative — [b <= earliest_pending + window_ms], where [window_ms] is
   a lower bound on cross-partition latency supplied by the caller — so a
   message emitted inside the window is always delivered at or after the
   barrier that flushes it, never into a partition's already-executed past.

   Byte-identical determinism at any K rests on two pillars:
   - every event carries a content-derived key [(time, rail, seq)] and each
     engine pops in key order, so the merged execution order is a function
     of the event set alone, not of the partitioning or of buffer timing;
   - observable sampling (the monitor, the global queue-depth high-water
     mark) happens only at K-independent instants — global-event times and
     run horizons — never at the K-dependent window barriers in between. *)

type stats = {
  windows : int;        (* synchronisation windows executed *)
  executed : int array; (* events executed, per shard *)
  busy_s : float array; (* wall-clock seconds each shard spent executing *)
  stall_s : float;      (* summed wall-clock seconds shards idled at barriers *)
  elapsed_s : float;    (* wall-clock seconds inside [run_until] *)
}

type t = {
  engines : Engine.t array;
  pool : Pool.t option;
  window_ms : float;
  (* outbox.(src): cross-shard messages emitted by shard [src] during the
     current window.  Owned by shard [src]'s domain while a window runs and
     drained only by the coordinator between windows, so no locking. *)
  outbox : (int * float * int * int * (unit -> unit)) list ref array;
  globals : (unit -> unit) Heap.t; (* (time, insertion order) *)
  mutable clock : float;           (* merged barrier clock *)
  mutable monitor : (float -> unit) option;
  mutable peak : int;              (* max total pending at sync points *)
  mutable windows_run : int;
  busy_s : float array;
  mutable stall_s : float;
  mutable elapsed_s : float;
}

let create ?pool ~shards ~window_ms () =
  if shards < 1 then invalid_arg "Shard.create: shards must be >= 1";
  if shards > 1 && not (window_ms > 0.0) then
    invalid_arg "Shard.create: window_ms must be positive with shards > 1";
  {
    engines = Array.init shards (fun _ -> Engine.create ());
    pool;
    window_ms;
    outbox = Array.init shards (fun _ -> ref []);
    globals = Heap.create ();
    clock = 0.0;
    monitor = None;
    peak = 0;
    windows_run = 0;
    busy_s = Array.make shards 0.0;
    stall_s = 0.0;
    elapsed_s = 0.0;
  }

let shards t = Array.length t.engines

let engine t i = t.engines.(i)

let window_ms t = t.window_ms

let now t = t.clock

let set_monitor t f = t.monitor <- Some f

let clear_monitor t = t.monitor <- None

let send t ~src ~dst ~time_ms ~rail ~seq f =
  if src >= 0 && src <> dst then
    (* Emitted from inside shard [src]'s window: buffer until the barrier.
       Conservatism (cross-shard latency >= window_ms) guarantees [time_ms]
       is at or after the barrier that will flush it. *)
    t.outbox.(src) := (dst, time_ms, rail, seq, f) :: !(t.outbox.(src))
  else
    (* Same shard, or global context (src = -1, every shard parked at the
       barrier): straight into the destination queue. *)
    Engine.schedule_keyed t.engines.(dst) ~time_ms ~rail ~seq f

let at_global t ~time_ms f =
  if time_ms < t.clock then invalid_arg "Shard.at_global: time in the past";
  Heap.push t.globals time_ms f

let flush t =
  Array.iter
    (fun box ->
      match !box with
      | [] -> ()
      | msgs ->
        box := [];
        List.iter
          (fun (dst, time_ms, rail, seq, f) ->
            Engine.schedule_keyed t.engines.(dst) ~time_ms ~rail ~seq f)
          (List.rev msgs))
    t.outbox

let min_next t =
  Array.fold_left
    (fun acc e ->
      match (acc, Engine.next_time e) with
      | None, nt -> nt
      | acc, None -> acc
      | Some a, Some b -> Some (Float.min a b))
    None t.engines

(* One pass: every engine executes its events up to [b].  Parallel when a
   pool with headroom is attached; engine state is shard-private by the
   caller's contract, and [Pool.map]'s join gives the coordinator a
   happens-before on everything the workers wrote (engine queues, outboxes,
   busy counters). *)
let pass t b =
  let k = Array.length t.engines in
  match t.pool with
  | Some pool when k > 1 && Pool.jobs pool > 1 ->
    let busy0 = Array.fold_left ( +. ) 0.0 t.busy_s in
    let t0 = Unix.gettimeofday () in
    ignore
      (Pool.map pool
         (fun i ->
           let s = Unix.gettimeofday () in
           Engine.run_until t.engines.(i) b;
           t.busy_s.(i) <- t.busy_s.(i) +. (Unix.gettimeofday () -. s))
         (List.init k Fun.id));
    let wall = Unix.gettimeofday () -. t0 in
    let busy = Array.fold_left ( +. ) 0.0 t.busy_s -. busy0 in
    t.stall_s <- t.stall_s +. Float.max 0.0 ((wall *. float_of_int k) -. busy)
  | _ ->
    Array.iteri
      (fun i e ->
        let s = Unix.gettimeofday () in
        Engine.run_until e b;
        t.busy_s.(i) <- t.busy_s.(i) +. (Unix.gettimeofday () -. s))
      t.engines

(* Execute everything with time <= b, settling the measure-zero case where
   a flushed message lands exactly on the barrier (latency exactly equal to
   the window, emitted at the window's opening instant): re-run until no
   engine holds an event at or before [b].  Catch-up emissions deliver
   strictly after [b], so this terminates. *)
let settle t b =
  let rec loop () =
    pass t b;
    flush t;
    match min_next t with Some tm when tm <= b -> loop () | _ -> ()
  in
  loop ()

let pending t =
  Array.fold_left (fun acc e -> acc + Engine.pending e) 0 t.engines

let sync_observe t time =
  let p = pending t in
  if p > t.peak then t.peak <- p;
  match t.monitor with None -> () | Some m -> m time

let run_until t horizon =
  let t0 = Unix.gettimeofday () in
  (* Sends from global context (outside any window) land in outboxes too;
     fold them in before the first window is sized, or the conservative
     bound would be computed blind to them. *)
  flush t;
  let rec loop () =
    if t.clock < horizon || min_next t <> None || not (Heap.is_empty t.globals)
    then begin
      let next_global = match Heap.peek t.globals with
        | Some (tm, _) -> Some tm
        | None -> None
      in
      let b = horizon in
      let b = match next_global with Some g -> Float.min b g | None -> b in
      let b =
        match min_next t with
        | Some e when e +. t.window_ms < b -> e +. t.window_ms
        | _ -> b
      in
      let b = Float.max b t.clock in
      t.windows_run <- t.windows_run + 1;
      settle t b;
      (* Advance the merged clock before globals fire: a global closure at
         time [b] must read [now t = b]. *)
      t.clock <- Float.max t.clock b;
      let is_global = next_global = Some b in
      if is_global then begin
        let rec fire () =
          match Heap.peek t.globals with
          | Some (tm, _) when tm <= b ->
            (match Heap.pop t.globals with
             | Some (_, f) -> f (); fire ()
             | None -> ())
          | _ -> ()
        in
        fire ();
        (* Globals may emit (directly or via pool fan-out into outboxes);
           settle again so the barrier invariant — nothing pending at or
           before the merged clock — holds when the monitor looks. *)
        flush t;
        (match min_next t with Some tm when tm <= b -> settle t b | _ -> ())
      end;
      (* Observables only at K-independent instants: global-event times and
         the caller's horizon.  Window barriers in between depend on the
         shard count and must stay invisible. *)
      if is_global || b >= horizon then sync_observe t b;
      if b < horizon then loop ()
    end
    else begin
      t.clock <- Float.max t.clock horizon;
      sync_observe t t.clock
    end
  in
  loop ();
  t.elapsed_s <- t.elapsed_s +. (Unix.gettimeofday () -. t0)

let peak_global t = t.peak

let scheduled_total t =
  Array.fold_left (fun acc e -> acc + Engine.scheduled_total e) 0 t.engines

let executed_total t =
  Array.fold_left (fun acc e -> acc + Engine.executed_total e) 0 t.engines

let fingerprint t =
  Array.fold_left (fun acc e -> acc + Engine.digest e) 0 t.engines

let stats t =
  {
    windows = t.windows_run;
    executed = Array.map Engine.executed_total t.engines;
    busy_s = Array.copy t.busy_s;
    stall_s = t.stall_s;
    elapsed_s = t.elapsed_s;
  }

module Heap = Rofl_util.Heap

type t = {
  mutable clock : float;
  queue : (unit -> unit) Heap.t;
  mutable peak : int;
  mutable scheduled : int;
  mutable executed : int;
  mutable digest : int;
  (* Observer called after each executed event, outside the queue: a
     checkpoint hook that scheduled events instead would shift the FIFO
     tie-breaking sequence numbers and change every same-time ordering. *)
  mutable monitor : (float -> unit) option;
}

let create () =
  {
    clock = 0.0;
    queue = Heap.create ();
    peak = 0;
    scheduled = 0;
    executed = 0;
    digest = 0;
    monitor = None;
  }

let now t = t.clock

let set_monitor t f = t.monitor <- Some f

let clear_monitor t = t.monitor <- None

let observe t =
  match t.monitor with None -> () | Some m -> m t.clock

let bump t =
  t.scheduled <- t.scheduled + 1;
  let depth = Heap.length t.queue in
  if depth > t.peak then t.peak <- depth

let schedule_at t ~time_ms f =
  if time_ms < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Heap.push t.queue time_ms f;
  bump t

let schedule t ~delay_ms f =
  if delay_ms < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time_ms:(t.clock +. delay_ms) f

let schedule_keyed t ~time_ms ~rail ~seq f =
  if time_ms < t.clock then invalid_arg "Engine.schedule_keyed: time in the past";
  Heap.push_keyed t.queue time_ms ~rail ~seq f;
  bump t

(* Order-insensitive fingerprint of one executed event.  Summed into
   [digest], so two runs executed the same multiset of (time, rail, seq)
   keys iff the digests agree — regardless of how the events were
   distributed across engines.  Native-int wraparound is deterministic. *)
let event_hash time rail seq =
  let h = Int64.to_int (Int64.bits_of_float time) in
  let h = (h * 1000003) + rail in
  let h = (h * 1000003) + seq in
  let h = h lxor (h lsr 29) in
  h * 0x9E3779B97F4A7C1

let exec t time rail seq f =
  t.clock <- time;
  t.executed <- t.executed + 1;
  t.digest <- t.digest + event_hash time rail seq;
  f ();
  observe t

let run t =
  let rec loop () =
    match Heap.pop_keyed t.queue with
    | None -> ()
    | Some (time, rail, seq, f) ->
      exec t time rail seq f;
      loop ()
  in
  loop ()

let run_until t horizon =
  let rec loop () =
    match Heap.peek t.queue with
    | Some (time, _) when time <= horizon ->
      (match Heap.pop_keyed t.queue with
       | Some (time, rail, seq, f) ->
         exec t time rail seq f;
         loop ()
       | None -> ())
    | Some _ | None ->
      (* Advance the clock to the horizon and give the monitor one look at
         the idle boundary: a quiescent queue (e.g. a stopped stabilizer)
         must not blind a checkpoint auditor to time passing. *)
      t.clock <- Float.max t.clock horizon;
      observe t
  in
  loop ()

let pending t = Heap.length t.queue

let next_time t =
  match Heap.peek t.queue with None -> None | Some (time, _) -> Some time

let peak_pending t = t.peak

let scheduled_total t = t.scheduled

let executed_total t = t.executed

let digest t = t.digest

let clear t = Heap.clear t.queue

let reset t =
  Heap.clear t.queue;
  t.clock <- 0.0;
  t.peak <- 0;
  t.scheduled <- 0;
  t.executed <- 0;
  t.digest <- 0;
  t.monitor <- None

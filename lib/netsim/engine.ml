module Heap = Rofl_util.Heap

type t = {
  mutable clock : float;
  queue : (unit -> unit) Heap.t;
  mutable peak : int;
  mutable scheduled : int;
}

let create () = { clock = 0.0; queue = Heap.create (); peak = 0; scheduled = 0 }

let now t = t.clock

let schedule_at t ~time_ms f =
  if time_ms < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Heap.push t.queue time_ms f;
  t.scheduled <- t.scheduled + 1;
  let depth = Heap.length t.queue in
  if depth > t.peak then t.peak <- depth

let schedule t ~delay_ms f =
  if delay_ms < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time_ms:(t.clock +. delay_ms) f

let run t =
  let rec loop () =
    match Heap.pop t.queue with
    | None -> ()
    | Some (time, f) ->
      t.clock <- time;
      f ();
      loop ()
  in
  loop ()

let run_until t horizon =
  let rec loop () =
    match Heap.peek t.queue with
    | Some (time, _) when time <= horizon ->
      (match Heap.pop t.queue with
       | Some (time, f) ->
         t.clock <- time;
         f ();
         loop ()
       | None -> ())
    | Some _ | None -> t.clock <- Float.max t.clock horizon
  in
  loop ()

let pending t = Heap.length t.queue

let peak_pending t = t.peak

let scheduled_total t = t.scheduled

let clear t = Heap.clear t.queue

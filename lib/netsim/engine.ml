module Heap = Rofl_util.Heap

type t = {
  mutable clock : float;
  queue : (unit -> unit) Heap.t;
  mutable peak : int;
  mutable scheduled : int;
  (* Observer called after each executed event, outside the queue: a
     checkpoint hook that scheduled events instead would shift the FIFO
     tie-breaking sequence numbers and change every same-time ordering. *)
  mutable monitor : (float -> unit) option;
}

let create () =
  { clock = 0.0; queue = Heap.create (); peak = 0; scheduled = 0; monitor = None }

let now t = t.clock

let set_monitor t f = t.monitor <- Some f

let clear_monitor t = t.monitor <- None

let observe t =
  match t.monitor with None -> () | Some m -> m t.clock

let schedule_at t ~time_ms f =
  if time_ms < t.clock then invalid_arg "Engine.schedule_at: time in the past";
  Heap.push t.queue time_ms f;
  t.scheduled <- t.scheduled + 1;
  let depth = Heap.length t.queue in
  if depth > t.peak then t.peak <- depth

let schedule t ~delay_ms f =
  if delay_ms < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time_ms:(t.clock +. delay_ms) f

let run t =
  let rec loop () =
    match Heap.pop t.queue with
    | None -> ()
    | Some (time, f) ->
      t.clock <- time;
      f ();
      observe t;
      loop ()
  in
  loop ()

let run_until t horizon =
  let rec loop () =
    match Heap.peek t.queue with
    | Some (time, _) when time <= horizon ->
      (match Heap.pop t.queue with
       | Some (time, f) ->
         t.clock <- time;
         f ();
         observe t;
         loop ()
       | None -> ())
    | Some _ | None ->
      (* Advance the clock to the horizon and give the monitor one look at
         the idle boundary: a quiescent queue (e.g. a stopped stabilizer)
         must not blind a checkpoint auditor to time passing. *)
      t.clock <- Float.max t.clock horizon;
      observe t
  in
  loop ()

let pending t = Heap.length t.queue

let peak_pending t = t.peak

let scheduled_total t = t.scheduled

let clear t = Heap.clear t.queue

type t = {
  counts : (string, int ref) Hashtbl.t;
  load : int array;
  mutable wasted_hops : int;
  mutable cancellations : int;
  mutable join_rejects : int;
  mutable promo_rejects : int;
}

let create ~routers =
  if routers < 0 then invalid_arg "Metrics.create: negative router count";
  {
    counts = Hashtbl.create 16;
    load = Array.make routers 0;
    wasted_hops = 0;
    cancellations = 0;
    join_rejects = 0;
    promo_rejects = 0;
  }

let counter m category =
  match Hashtbl.find_opt m.counts category with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add m.counts category r;
    r

let incr m category k =
  let r = counter m category in
  r := !r + k

let handle = counter

let charge_hop_via m r router =
  r := !r + 1;
  if router >= 0 && router < Array.length m.load then
    m.load.(router) <- m.load.(router) + 1

let charge_load m router =
  if router >= 0 && router < Array.length m.load then
    m.load.(router) <- m.load.(router) + 1

let charge_hop m category router =
  incr m category 1;
  if router >= 0 && router < Array.length m.load then
    m.load.(router) <- m.load.(router) + 1

let charge_path m category = function
  | [] | [ _ ] -> ()
  | first :: _ as path ->
    let hops = List.length path - 1 in
    incr m category hops;
    if first >= 0 && first < Array.length m.load then
      m.load.(first) <- m.load.(first) + 1;
    List.iteri
      (fun i router ->
        if i > 0 && router >= 0 && router < Array.length m.load then
          m.load.(router) <- m.load.(router) + 1)
      path

let get m category =
  match Hashtbl.find_opt m.counts category with Some r -> !r | None -> 0

let total m = Hashtbl.fold (fun _ r acc -> acc + !r) m.counts 0

let categories m =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) m.counts []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let router_load m = Array.copy m.load

let charge_wasted m hops = m.wasted_hops <- m.wasted_hops + hops

let charge_cancelled m k = m.cancellations <- m.cancellations + k

let wasted_hops m = m.wasted_hops

let cancellations m = m.cancellations

let charge_join_reject m = m.join_rejects <- m.join_rejects + 1

let charge_promo_reject m = m.promo_rejects <- m.promo_rejects + 1

let join_rejects m = m.join_rejects

let promo_rejects m = m.promo_rejects

let reset m =
  Hashtbl.reset m.counts;
  Array.fill m.load 0 (Array.length m.load) 0;
  m.wasted_hops <- 0;
  m.cancellations <- 0;
  m.join_rejects <- 0;
  m.promo_rejects <- 0

let merge_into ~dst src =
  if Array.length dst.load <> Array.length src.load then
    invalid_arg "Metrics.merge_into: router table size mismatch";
  Hashtbl.iter (fun k r -> incr dst k !r) src.counts;
  Array.iteri (fun i v -> dst.load.(i) <- dst.load.(i) + v) src.load;
  dst.wasted_hops <- dst.wasted_hops + src.wasted_hops;
  dst.cancellations <- dst.cancellations + src.cancellations;
  dst.join_rejects <- dst.join_rejects + src.join_rejects;
  dst.promo_rejects <- dst.promo_rejects + src.promo_rejects

(** OSPF-like link-state substrate.

    ROFL assumes "an underlying OSPF-like protocol that provides a network
    map (and not routes to hosts) and can identify link failures in the
    physical network" (§2.1).  This module is that substrate: a dynamic view
    over a {!Rofl_topology.Graph.t} with failable links and routers, shortest
    paths (Dijkstra over link latencies), source-route validity checks,
    failure notifications, and the LSA flood cost model used when the
    experiments charge messages for topology dissemination. *)

(** Shortest paths are served from per-source Dijkstra trees that are grown
    on demand (a single-pair query settles only as far as its destination)
    and invalidated *per event*: failing or restoring an element drops only
    the cached trees whose paths that element can actually have changed,
    instead of the former global version bump that discarded every tree on
    every event. *)

type t

type event =
  | Link_down of int * int
  | Link_up of int * int
  | Router_down of int
  | Router_up of int

val create : Rofl_topology.Graph.t -> t

val graph : t -> Rofl_topology.Graph.t

val on_event : t -> (event -> unit) -> unit
(** Register a callback invoked synchronously on every topology change —
    the "notifies the routing layer of such events" hook. *)

val fail_link : t -> int -> int -> unit
(** Mark a link down (idempotent; the link must exist in the graph). *)

val restore_link : t -> int -> int -> unit

val fail_router : t -> int -> unit
(** Mark a router down; its links are implicitly unusable. *)

val restore_router : t -> int -> unit

val router_alive : t -> int -> bool

val link_alive : t -> int -> int -> bool
(** Both endpoints alive and the link not failed. *)

val reachable : t -> int -> int -> bool

val path : t -> int -> int -> int list option
(** Latency-shortest live path, inclusive of both endpoints
    ([Some [src]] when [src = dst]).  [None] when partitioned. *)

val path_to : t -> int -> int -> int list option
(** Single-pair form of {!path}: Dijkstra from [src] stops as soon as [dst]
    is settled (and the partial tree is cached and resumed by later
    queries).  Same results as {!path}; this is the hot-path entry point for
    one-off reachability probes and stretch denominators. *)

val distance_to : t -> int -> int -> float option
(** Early-exit single-pair latency distance; equals {!distance_latency}. *)

val distance_hops : t -> int -> int -> int option
(** Hop length of {!path} (0 when [src = dst]). *)

val distance_to_nan : t -> int -> int -> float
(** Unboxed {!distance_to} for per-hop pricing loops: same answer, NaN
    instead of [None].  On a warm tree this allocates nothing, where the
    option form costs ~17 words per call in closures and boxes. *)

val distance_hops_count : t -> int -> int -> int
(** Unboxed {!distance_hops}: -1 instead of [None]. *)

val price_hop_into : t -> int -> int -> latency:float array -> int -> int
(** [price_hop_into t src dst ~latency i] adds the src→dst latency into
    [latency.(i)] and returns the hop count of the same path, [-1] (and no
    write) when unreachable.  Fuses {!distance_to_nan} and
    {!distance_hops_count} into one settle with no boxed return — the
    walk engines price every ring hop through this, allocation-free. *)

val distance_latency : t -> int -> int -> float option
(** Total latency of {!path}. *)

val next_hop : t -> int -> int -> int option
(** First hop on {!path} from [src] towards [dst]. *)

val healthy : t -> bool
(** No failed links and no failed routers — O(1).  When healthy, every
    route whose consecutive pairs are graph links is necessarily valid,
    which lets per-hop route validation short-circuit. *)

val valid_source_route : t -> int list -> bool
(** All consecutive pairs are live links and all routers alive — the check a
    router performs before using a cached source route. *)

val lsa_flood_cost : t -> int
(** Messages for one LSA flood: one per live directed link (2·live links) —
    the cost model for CMU-ETHERNET-style flooding and zero-ID piggyback
    accounting. *)

val live_router_count : t -> int

val live_link_count : t -> int

val eccentricity_hops : t -> int -> int
(** Max live hop distance from a router to any reachable router. *)

val diameter_hops : t -> int
(** Max eccentricity over live routers (0 if none). *)

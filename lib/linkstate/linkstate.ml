module Graph = Rofl_topology.Graph
module Heap = Rofl_util.Heap

type event =
  | Link_down of int * int
  | Link_up of int * int
  | Router_down of int
  | Router_up of int

(* Resumable Dijkstra state for one source.  The tree is grown on demand:
   single-pair queries ([path_to], [distance_to], [reachable]) settle only as
   far as their destination; whole-tree consumers ([eccentricity_hops]) run
   the frontier dry.  A node is "labeled" once [dist] is finite: its entry in
   [parent] then records the path the label came from, whether or not the
   node is settled yet. *)
type spf = {
  src : int;
  dist : float array;   (* latency distance, infinity if unlabeled *)
  hops : int array;     (* hop count along the chosen path *)
  parent : int array;   (* predecessor on shortest path, -1 at source *)
  settled : bool array;
  frontier : int Heap.t;
  mutable complete : bool; (* frontier drained: every [dist] is final *)
}

type scratch = {
  s_dist : float array;
  s_hops : int array;
  s_parent : int array;
  s_settled : bool array;
}

type t = {
  g : Graph.t;
  n : int;
  adj : Bytes.t option;
  (* [n * n] liveness matrix: byte (u*n + v) is 1 iff the link exists, is
     not failed, and both endpoints are alive.  [link_alive] sits inside
     every SPF relaxation and every per-hop source-route validation, where
     the hashtable probes (tuple hashing included) dominate profiles; one
     bounds-checked byte read replaces them.  [None] only for graphs too
     large for an n^2 table, which falls back to the probe chain. *)
  failed_links : (int * int, unit) Hashtbl.t; (* canonical (min,max) key *)
  failed_routers : (int, unit) Hashtbl.t;
  spf_cache : (int, spf) Hashtbl.t; (* src -> partial or complete tree *)
  mutable free_scratch : scratch list; (* recycled arrays of dropped trees *)
  mutable listeners : (event -> unit) list;
}

let matrix_limit = 4096

let create g =
  let n = Graph.n g in
  let adj =
    if n <= matrix_limit then begin
      let a = Bytes.make (n * n) '\000' in
      Graph.iter_links g (fun { Graph.u; v; _ } ->
          Bytes.set a ((u * n) + v) '\001';
          Bytes.set a ((v * n) + u) '\001');
      Some a
    end
    else None
  in
  {
    g;
    n;
    adj;
    failed_links = Hashtbl.create 16;
    failed_routers = Hashtbl.create 16;
    spf_cache = Hashtbl.create 64;
    free_scratch = [];
    listeners = [];
  }

let graph t = t.g

let on_event t f = t.listeners <- f :: t.listeners

let notify t ev = List.iter (fun f -> f ev) t.listeners

let canonical u v = if u <= v then (u, v) else (v, u)

let router_alive t r = not (Hashtbl.mem t.failed_routers r)

let healthy t =
  Hashtbl.length t.failed_links = 0 && Hashtbl.length t.failed_routers = 0

let link_alive t u v =
  match t.adj with
  | Some a -> Bytes.get a ((u * t.n) + v) <> '\000'
  | None ->
    router_alive t u && router_alive t v
    && Graph.has_link t.g u v
    && not (Hashtbl.mem t.failed_links (canonical u v))

let set_adj t u v alive =
  match t.adj with
  | Some a ->
    let byte = if alive then '\001' else '\000' in
    Bytes.set a ((u * t.n) + v) byte;
    Bytes.set a ((v * t.n) + u) byte
  | None -> ()

(* -- SPF construction and resumption ------------------------------------ *)

let max_recycled = 32

let take_scratch t n =
  match t.free_scratch with
  | s :: rest when Array.length s.s_dist = n ->
    t.free_scratch <- rest;
    Array.fill s.s_dist 0 n infinity;
    Array.fill s.s_hops 0 n max_int;
    Array.fill s.s_parent 0 n (-1);
    Array.fill s.s_settled 0 n false;
    s
  | _ ->
    {
      s_dist = Array.make n infinity;
      s_hops = Array.make n max_int;
      s_parent = Array.make n (-1);
      s_settled = Array.make n false;
    }

let recycle t (st : spf) =
  if List.length t.free_scratch < max_recycled then
    t.free_scratch <-
      {
        s_dist = st.dist;
        s_hops = st.hops;
        s_parent = st.parent;
        s_settled = st.settled;
      }
      :: t.free_scratch

let new_spf t src =
  let n = Graph.n t.g in
  let s = take_scratch t n in
  let st =
    {
      src;
      dist = s.s_dist;
      hops = s.s_hops;
      parent = s.s_parent;
      settled = s.s_settled;
      frontier = Heap.create ();
      complete = false;
    }
  in
  if router_alive t src then begin
    st.dist.(src) <- 0.0;
    st.hops.(src) <- 0;
    Heap.push st.frontier 0.0 src
  end
  else st.complete <- true;
  st

(* Settle frontier nodes until [until] (if any) is settled or the frontier
   drains.  Relaxations consult the *current* failed sets; the invalidation
   rules below guarantee any tree kept across an event resumes to the same
   labels a from-scratch run on the new topology would produce. *)
let advance t (st : spf) ~until =
  let stop_at u = match until with Some d -> u = d | None -> false in
  let rec loop () =
    match Heap.pop st.frontier with
    | None -> st.complete <- true
    | Some (_, u) ->
      if st.settled.(u) then loop ()
      else begin
        st.settled.(u) <- true;
        List.iter
          (fun (v, w) ->
            if link_alive t u v then begin
              let nd = st.dist.(u) +. w in
              if
                nd < st.dist.(v)
                || (nd = st.dist.(v) && st.hops.(u) + 1 < st.hops.(v))
              then begin
                st.dist.(v) <- nd;
                st.hops.(v) <- st.hops.(u) + 1;
                st.parent.(v) <- u;
                Heap.push st.frontier nd v
              end
            end)
          (Graph.neighbors t.g u);
        if not (stop_at u) then loop ()
      end
  in
  let already_done =
    st.complete || (match until with Some d -> st.settled.(d) | None -> false)
  in
  if not already_done then loop ()

let state t src =
  match Hashtbl.find_opt t.spf_cache src with
  | Some st -> st
  | None ->
    let st = new_spf t src in
    Hashtbl.replace t.spf_cache src st;
    st

let spf t src =
  let st = state t src in
  advance t st ~until:None;
  st

let settle_to t src dst =
  let st = state t src in
  advance t st ~until:(Some dst);
  st

(* Allocation-free settle for the hot pricing path: on a warm tree the
   [advance] entry alone costs ~10 words ([stop_at]/[loop] closures built
   before the already-done check, plus the [Some dst] witness), and
   [state]'s [find_opt] adds another option — the walk engines price every
   ring hop through these queries, so the boxes dominate their allocation
   profile.  The settled check is the same condition [advance] tests. *)
let settled_state t src dst =
  let st =
    match Hashtbl.find t.spf_cache src with
    | st -> st
    | exception Not_found ->
      let st = new_spf t src in
      Hashtbl.replace t.spf_cache src st;
      st
  in
  if not (st.complete || st.settled.(dst)) then advance t st ~until:(Some dst);
  st

(* -- targeted invalidation ----------------------------------------------

   The old engine bumped a global version on every event, discarding all
   cached trees.  Instead, each event drops exactly the trees it can have
   changed:

   - fail_link (u,v):   a tree changes only if the edge carried a label
                        (parent.(v) = u or parent.(u) = v).  Removing a
                        non-tree edge removes no used path and can only
                        lengthen alternatives, so every label stays optimal.
   - restore_link (u,v): a tree changes only if the new edge improves some
                        label.  For settled endpoints the labels are final,
                        so the triangle test against the edge weight is
                        exact; an incomplete tree whose endpoints are not
                        both settled is dropped conservatively (its labels
                        are still upper bounds and could shrink past the
                        test).
   - fail_router r:     a tree changes only if r carries a label
                        (dist.(r) < inf); unlabeled routers appear on no
                        recorded path, and resumption skips dead routers.
   - restore_router r:  a tree changes only if r becomes reachable, i.e.
                        some live neighbour carries a final label.  Settled
                        sources only; incomplete trees drop conservatively.

   Soundness beats precision here: a dropped tree costs one recomputation,
   a kept stale tree corrupts every downstream figure. *)

let drop_trees t pred =
  Hashtbl.filter_map_inplace
    (fun _src st ->
      if pred st then begin
        recycle t st;
        None
      end
      else Some st)
    t.spf_cache

let tree_uses_link (st : spf) u v = st.parent.(v) = u || st.parent.(u) = v

let link_could_improve (st : spf) u v w =
  let du = st.dist.(u) and dv = st.dist.(v) in
  du +. w < dv || dv +. w < du
  || (du +. w = dv && st.hops.(u) + 1 < st.hops.(v))
  || (dv +. w = du && st.hops.(v) + 1 < st.hops.(u))

let invalidate_link_down t u v = drop_trees t (fun st -> tree_uses_link st u v)

let invalidate_link_up t u v =
  if link_alive t u v then begin
    let w = Graph.latency t.g u v in
    drop_trees t (fun st ->
        if st.complete || (st.settled.(u) && st.settled.(v)) then
          link_could_improve st u v w
        else true)
  end

let invalidate_router_down t r =
  drop_trees t (fun st -> st.src = r || st.dist.(r) < infinity)

let invalidate_router_up t r =
  drop_trees t (fun st ->
      st.src = r
      || (not st.complete)
      || List.exists
           (fun (u, _) -> link_alive t u r && st.dist.(u) < infinity)
           (Graph.neighbors t.g r))

let fail_link t u v =
  if not (Graph.has_link t.g u v) then invalid_arg "Linkstate.fail_link: no such link";
  let key = canonical u v in
  if not (Hashtbl.mem t.failed_links key) then begin
    Hashtbl.add t.failed_links key ();
    set_adj t u v false;
    invalidate_link_down t u v;
    notify t (Link_down (u, v))
  end

let restore_link t u v =
  let key = canonical u v in
  if Hashtbl.mem t.failed_links key then begin
    Hashtbl.remove t.failed_links key;
    set_adj t u v (router_alive t u && router_alive t v);
    invalidate_link_up t u v;
    notify t (Link_up (u, v))
  end

let fail_router t r =
  if not (Hashtbl.mem t.failed_routers r) then begin
    Hashtbl.add t.failed_routers r ();
    List.iter (fun (v, _) -> set_adj t r v false) (Graph.neighbors t.g r);
    invalidate_router_down t r;
    notify t (Router_down r)
  end

let restore_router t r =
  if Hashtbl.mem t.failed_routers r then begin
    Hashtbl.remove t.failed_routers r;
    List.iter
      (fun (v, _) ->
        set_adj t r v
          (router_alive t v && not (Hashtbl.mem t.failed_links (canonical r v))))
      (Graph.neighbors t.g r);
    invalidate_router_up t r;
    notify t (Router_up r)
  end

(* -- queries ------------------------------------------------------------ *)

let distance_to t src dst =
  if not (router_alive t src && router_alive t dst) then None
  else begin
    let st = settle_to t src dst in
    if st.dist.(dst) < infinity then Some st.dist.(dst) else None
  end

let path_to t src dst =
  if not (router_alive t src && router_alive t dst) then None
  else begin
    let st = settle_to t src dst in
    if st.dist.(dst) = infinity then None
    else begin
      (* Every ancestor of a labeled node is settled, so the parent chain is
         complete even in a partial tree. *)
      let rec walk acc v = if v = src then src :: acc else walk (v :: acc) st.parent.(v) in
      Some (walk [] dst)
    end
  end

let reachable t src dst =
  router_alive t src && router_alive t dst
  && (settle_to t src dst).dist.(dst) < infinity

let path = path_to

let distance_hops t src dst =
  if not (router_alive t src && router_alive t dst) then None
  else begin
    let st = settle_to t src dst in
    if st.dist.(dst) < infinity then Some st.hops.(dst) else None
  end

(* Unboxed twins of [distance_to]/[distance_hops] for per-hop pricing:
   same answers, sentinel returns (NaN / -1) instead of options. *)
let distance_to_nan t src dst =
  if not (router_alive t src && router_alive t dst) then nan
  else begin
    let st = settled_state t src dst in
    if st.dist.(dst) < infinity then st.dist.(dst) else nan
  end

let distance_hops_count t src dst =
  if not (router_alive t src && router_alive t dst) then -1
  else begin
    let st = settled_state t src dst in
    if st.dist.(dst) < infinity then st.hops.(dst) else -1
  end

(* Fused pricing for the walk engines: one settle per hop, the latency
   accumulated straight into a float-array register (never crossing a
   module boundary as a boxed return), the hop count back as an immediate.
   This is the only truly allocation-free way to price a hop — even the
   NaN-sentinel form boxes its float on return. *)
let price_hop_into t src dst ~latency i =
  if not (router_alive t src && router_alive t dst) then -1
  else begin
    let st = settled_state t src dst in
    if st.dist.(dst) < infinity then begin
      latency.(i) <- latency.(i) +. st.dist.(dst);
      st.hops.(dst)
    end
    else -1
  end

let distance_latency = distance_to

let next_hop t src dst =
  match path_to t src dst with
  | None | Some [ _ ] -> None
  | Some (_ :: hop :: _) -> Some hop
  | Some [] -> None

let valid_source_route t = function
  | [] -> false
  | [ r ] -> router_alive t r
  | first :: _ as route ->
    router_alive t first
    &&
    let rec ok = function
      | a :: (b :: _ as rest) -> link_alive t a b && ok rest
      | [ _ ] | [] -> true
    in
    ok route

let live_link_count t =
  let count = ref 0 in
  Graph.iter_links t.g (fun { Graph.u; v; _ } -> if link_alive t u v then incr count);
  !count

let live_router_count t =
  let count = ref 0 in
  for r = 0 to Graph.n t.g - 1 do
    if router_alive t r then incr count
  done;
  !count

let lsa_flood_cost t = 2 * live_link_count t

let eccentricity_hops t src =
  let st = spf t src in
  let best = ref 0 in
  Array.iteri
    (fun v h -> if st.dist.(v) < infinity && h > !best then best := h)
    st.hops;
  !best

let diameter_hops t =
  let best = ref 0 in
  for r = 0 to Graph.n t.g - 1 do
    if router_alive t r then begin
      let e = eccentricity_hops t r in
      if e > !best then best := e
    end
  done;
  !best

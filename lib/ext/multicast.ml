module Id = Rofl_idspace.Id
module Network = Rofl_intra.Network
module Vnode = Rofl_core.Vnode
module Msg = Rofl_core.Msg
module Metrics = Rofl_netsim.Metrics

type t = {
  net : Network.t;
  g : Anycast.group;
  adj : (int, int list) Hashtbl.t; (* tree adjacency *)
  member_gw : (int32, int) Hashtbl.t;
}

let create net g = { net; g; adj = Hashtbl.create 16; member_gw = Hashtbl.create 8 }

let group t = t.g

let on_tree t r = Hashtbl.mem t.adj r

let add_node t r = if not (on_tree t r) then Hashtbl.add t.adj r []

let add_link t a b =
  if a <> b then begin
    add_node t a;
    add_node t b;
    let na = Hashtbl.find t.adj a in
    if not (List.mem b na) then Hashtbl.replace t.adj a (b :: na);
    let nb = Hashtbl.find t.adj b in
    if not (List.mem a nb) then Hashtbl.replace t.adj b (a :: nb)
  end

let join_member t ~gateway ~suffix =
  if Hashtbl.mem t.member_gw suffix then Error "suffix already in group"
  else begin
    let first = Hashtbl.length t.member_gw = 0 in
    let paint_msgs = ref 0 in
    if not first then begin
      (* Anycast towards the nearest member; paint the reverse path until it
         grafts onto the existing tree. *)
      let target = Anycast.member_id t.g ~suffix in
      let res =
        Network.lookup t.net ~from:gateway ~target ~category:Msg.join ~use_cache:true
      in
      paint_msgs := res.Network.msgs;
      (* The greedy walk may revisit routers; paint the loop-free reduction
         of the traversed path so the tree stays acyclic. *)
      let simplify hops =
        let rec go acc = function
          | [] -> List.rev acc
          | r :: rest ->
            if List.mem r acc then begin
              (* Cut the loop: roll back to r's first visit. *)
              let rec drop = function
                | x :: _ as l when x = r -> l
                | _ :: tl -> drop tl
                | [] -> [ r ]
              in
              go (drop acc) rest
            end
            else go (r :: acc) rest
        in
        go [] hops
      in
      (* Paint the reverse path link by link, stopping as soon as the
         request touches a router already on the tree (§5.2). *)
      let rec walk = function
        | a :: (b :: _ as rest) ->
          let b_was_on_tree = on_tree t b in
          add_link t a b;
          if b_was_on_tree then () else walk rest
        | [ r ] -> add_node t r
        | [] -> ()
      in
      walk (simplify res.Network.visited)
    end
    else add_node t gateway;
    (* The member also joins the ring with its (G, x) identifier so that
       future anycast joins can find the group. *)
    match
      Network.join_host t.net ~gateway ~id:(Anycast.member_id t.g ~suffix)
        ~cls:Vnode.Stable
    with
    | Ok o ->
      Hashtbl.replace t.member_gw suffix gateway;
      add_node t gateway;
      Ok (o.Network.join_msgs + !paint_msgs)
    | Error e -> Error e
  end

let tree_routers t = Hashtbl.fold (fun r _ acc -> r :: acc) t.adj []

let tree_links t =
  Hashtbl.fold
    (fun a ns acc -> List.fold_left (fun acc b -> if a < b then (a, b) :: acc else acc) acc ns)
    t.adj []

let members t =
  Hashtbl.fold (fun s _ acc -> Anycast.member_id t.g ~suffix:s :: acc) t.member_gw []
  |> List.sort Id.compare

let send t ~from_suffix =
  match Hashtbl.find_opt t.member_gw from_suffix with
  | None -> Error "sender is not a group member"
  | Some start ->
    (* Flood over tree links: each router forwards on every tree link except
       the arrival link. *)
    let seen = Hashtbl.create 16 in
    let msgs = ref 0 in
    let q = Queue.create () in
    Hashtbl.replace seen start ();
    Queue.push start q;
    while not (Queue.is_empty q) do
      let r = Queue.pop q in
      List.iter
        (fun nb ->
          if not (Hashtbl.mem seen nb) then begin
            Hashtbl.replace seen nb ();
            incr msgs;
            Rofl_routing.Charge.hop t.net.Network.metrics Msg.data nb;
            Queue.push nb q
          end)
        (match Hashtbl.find_opt t.adj r with Some ns -> ns | None -> [])
    done;
    let reached =
      Hashtbl.fold
        (fun _ gw acc -> if Hashtbl.mem seen gw then acc + 1 else acc)
        t.member_gw 0
    in
    Ok (!msgs, reached)

let check_tree t =
  let nodes = Hashtbl.length t.adj in
  if nodes = 0 then true
  else begin
    let edges = List.length (tree_links t) in
    (* Connectivity from an arbitrary node. *)
    let start = match tree_routers t with r :: _ -> r | [] -> -1 in
    let seen = Hashtbl.create 16 in
    let q = Queue.create () in
    Hashtbl.replace seen start ();
    Queue.push start q;
    while not (Queue.is_empty q) do
      let r = Queue.pop q in
      List.iter
        (fun nb ->
          if not (Hashtbl.mem seen nb) then begin
            Hashtbl.replace seen nb ();
            Queue.push nb q
          end)
        (match Hashtbl.find_opt t.adj r with Some ns -> ns | None -> [])
    done;
    let connected = Hashtbl.length seen = nodes in
    let acyclic = edges = nodes - 1 in
    let members_covered =
      Hashtbl.fold (fun _ gw acc -> acc && Hashtbl.mem seen gw) t.member_gw true
    in
    connected && acyclic && members_covered
  end

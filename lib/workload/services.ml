module Prng = Rofl_util.Prng

(* Open-loop service-resolution workload with phases.

   Demand is Zipf-skewed over service ranks (rank 1 = hottest) with a
   tunable fraction of queries for names that were never published (the
   negative-caching traffic).  Two phases stress the layer the way real
   deployments break:

   - the *flash crowd*: during [flash_start, flash_start + flash_len) the
     arrival rate multiplies by [flash_mult] and the extra traffic
     concentrates on the [flash_focus] hottest ranks — the popularity
     concentration that decides whether a response cache saves the owner;

   - *provider flaps*: a Poisson stream of (service, provider) toggles, the
     source of genuinely stale cached answers the campaign's oracle
     comparison measures.

   The republish *storm* is not generated here: republish timing belongs to
   the directory (it is control-plane, not demand), and the campaign
   triggers it with [Directory.republish_all] at its configured instant.

   Events are sorted by time with a stable per-kind sequence, and the whole
   trace is a pure function of the generator state — the determinism the
   campaign's jobs/shards byte-identity rests on. *)

type event =
  | Resolve of { at_ms : float; rank : int; seq : int }
      (** [rank] in [1..services]; rank 0 = a never-published name *)
  | Flap of { at_ms : float; service : int; provider : int; seq : int }
      (** toggle provider [provider] of service [service] (1-based rank) *)

type flash = {
  flash_start_ms : float;
  flash_len_ms : float;
  flash_mult : float;   (* arrival-rate multiplier during the crowd *)
  flash_focus : int;    (* the crowd hammers ranks [1..flash_focus] *)
}

let event_time = function Resolve { at_ms; _ } | Flap { at_ms; _ } -> at_ms

let generate rng ~horizon_ms ~services ~providers_per_service ~rate_per_s ~zipf_s
    ?(unknown_fraction = 0.0) ?flash ?(flap_rate_per_s = 0.0) () =
  if services < 1 then invalid_arg "Services.generate: services must be >= 1";
  if providers_per_service < 1 then
    invalid_arg "Services.generate: providers_per_service must be >= 1";
  if rate_per_s <= 0.0 then invalid_arg "Services.generate: rate must be positive";
  if unknown_fraction < 0.0 || unknown_fraction > 1.0 then
    invalid_arg "Services.generate: unknown fraction out of [0,1]";
  (match flash with
   | Some f ->
     if f.flash_mult < 1.0 then invalid_arg "Services.generate: flash_mult must be >= 1";
     if f.flash_focus < 1 || f.flash_focus > services then
       invalid_arg "Services.generate: flash_focus out of [1,services]"
   | None -> ());
  let events = ref [] in
  let seq = ref 0 in
  let in_flash at =
    match flash with
    | None -> false
    | Some f -> at >= f.flash_start_ms && at < f.flash_start_ms +. f.flash_len_ms
  in
  let rate_at at =
    match flash with
    | Some f when in_flash at -> rate_per_s *. f.flash_mult
    | _ -> rate_per_s
  in
  (* Piecewise-constant Poisson arrivals by thinning against the peak rate:
     one exponential stream at the maximum, arrivals kept with probability
     rate(t)/peak — exact for piecewise-constant rates and immune to the
     boundary drift of segment-by-segment generation. *)
  let peak = match flash with Some f -> rate_per_s *. f.flash_mult | None -> rate_per_s in
  let gap_ms = 1000.0 /. peak in
  let clock = ref (Prng.exponential rng gap_ms) in
  while !clock < horizon_ms do
    let at = !clock in
    if Prng.float rng 1.0 < rate_at at /. peak then begin
      let rank =
        let hot =
          match flash with
          | Some f when in_flash at ->
            (* the crowd's excess traffic is all focus-ranked *)
            Prng.float rng 1.0 < (f.flash_mult -. 1.0) /. f.flash_mult
          | _ -> false
        in
        if hot then
          1 + Prng.int rng (match flash with Some f -> f.flash_focus | None -> 1)
        else if unknown_fraction > 0.0 && Prng.float rng 1.0 < unknown_fraction then 0
        else Prng.zipf rng ~n:services ~s:zipf_s
      in
      let s = !seq in
      incr seq;
      events := Resolve { at_ms = at; rank; seq = s } :: !events
    end;
    clock := !clock +. Prng.exponential rng gap_ms
  done;
  if flap_rate_per_s > 0.0 then begin
    let gap_ms = 1000.0 /. flap_rate_per_s in
    let clock = ref (Prng.exponential rng gap_ms) in
    while !clock < horizon_ms do
      let s = !seq in
      incr seq;
      events :=
        Flap
          {
            at_ms = !clock;
            service = 1 + Prng.int rng services;
            provider = Prng.int rng providers_per_service;
            seq = s;
          }
        :: !events;
      clock := !clock +. Prng.exponential rng gap_ms
    done
  end;
  List.sort
    (fun a b ->
      let c = compare (event_time a) (event_time b) in
      if c <> 0 then c
      else
        compare
          (match a with Resolve { seq; _ } | Flap { seq; _ } -> seq)
          (match b with Resolve { seq; _ } | Flap { seq; _ } -> seq))
    !events

let count events =
  List.fold_left
    (fun (r, f) ev -> match ev with Resolve _ -> (r + 1, f) | Flap _ -> (r, f + 1))
    (0, 0) events

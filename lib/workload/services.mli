(** Zipf-skewed open-loop service-resolution demand with flash-crowd and
    provider-flap phases.

    The demand side of the service-discovery campaign: Poisson resolution
    arrivals whose targets follow a Zipf popularity law (rank 1 hottest),
    with an optional fraction aimed at never-published names (negative
    caching traffic), a flash-crowd window during which the rate multiplies
    and the excess concentrates on the hottest ranks, and a Poisson stream
    of provider up/down toggles — the source of genuinely stale cached
    answers.  Republish storms are control-plane and belong to the
    directory; the campaign triggers them directly.

    The trace is a pure function of the generator: sorted by time, stable
    sequence numbers, no draws outside generation. *)

type event =
  | Resolve of { at_ms : float; rank : int; seq : int }
      (** resolve the service at popularity [rank] (1-based); rank 0 asks
          for a name that was never published *)
  | Flap of { at_ms : float; service : int; provider : int; seq : int }
      (** toggle provider index [provider] of service rank [service] *)

type flash = {
  flash_start_ms : float;
  flash_len_ms : float;
  flash_mult : float;  (** arrival-rate multiplier during the crowd *)
  flash_focus : int;   (** the crowd hammers ranks [1..flash_focus] *)
}

val event_time : event -> float

val generate :
  Rofl_util.Prng.t ->
  horizon_ms:float ->
  services:int ->
  providers_per_service:int ->
  rate_per_s:float ->
  zipf_s:float ->
  ?unknown_fraction:float ->
  ?flash:flash ->
  ?flap_rate_per_s:float ->
  unit ->
  event list

val count : event list -> int * int
(** (resolves, flaps). *)

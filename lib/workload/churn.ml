module Prng = Rofl_util.Prng

type event =
  | Join of { at_ms : float; seq : int }
  | Leave of { at_ms : float; seq : int }
  | Move of { at_ms : float; seq : int }
  | Crash of { at_ms : float; seq : int }

let event_time = function
  | Join { at_ms; _ } | Leave { at_ms; _ } | Move { at_ms; _ } | Crash { at_ms; _ } ->
    at_ms

let event_seq = function
  | Join { seq; _ } | Leave { seq; _ } | Move { seq; _ } | Crash { seq; _ } -> seq

let generate rng ~horizon_ms ~arrival_rate_per_s ~mean_lifetime_s ~move_fraction
    ?(crash_fraction = 0.0) () =
  if arrival_rate_per_s <= 0.0 then invalid_arg "Churn.generate: arrival rate must be positive";
  if move_fraction < 0.0 || move_fraction > 1.0 then
    invalid_arg "Churn.generate: move fraction out of [0,1]";
  if crash_fraction < 0.0 || crash_fraction > 1.0 then
    invalid_arg "Churn.generate: crash fraction out of [0,1]";
  if move_fraction +. crash_fraction > 1.0 then
    invalid_arg "Churn.generate: move + crash fractions exceed 1";
  let events = ref [] in
  let clock = ref 0.0 in
  let seq = ref 0 in
  let mean_interarrival_ms = 1000.0 /. arrival_rate_per_s in
  let continue_ = ref true in
  while !continue_ do
    clock := !clock +. Prng.exponential rng mean_interarrival_ms;
    if !clock >= horizon_ms then continue_ := false
    else begin
      let s = !seq in
      incr seq;
      events := Join { at_ms = !clock; seq = s } :: !events;
      let lifetime = Prng.exponential rng (1000.0 *. mean_lifetime_s) in
      let depart = !clock +. lifetime in
      if depart < horizon_ms then begin
        let u = Prng.float rng 1.0 in
        let ev =
          if u < move_fraction then Move { at_ms = depart; seq = s }
          else if u < move_fraction +. crash_fraction then Crash { at_ms = depart; seq = s }
          else Leave { at_ms = depart; seq = s }
        in
        events := ev :: !events
      end
    end
  done;
  List.sort (fun a b -> compare (event_time a) (event_time b)) !events

let count events =
  List.fold_left
    (fun (j, l, m, c) ev ->
      match ev with
      | Join _ -> (j + 1, l, m, c)
      | Leave _ -> (j, l + 1, m, c)
      | Move _ -> (j, l, m + 1, c)
      | Crash _ -> (j, l, m, c + 1))
    (0, 0, 0, 0) events

type session = {
  seq : int;
  joined_ms : float;
  departed_ms : float option;
  departure : [ `Leave | `Move | `Crash ] option;
}

let sessions events =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun ev ->
      match ev with
      | Join { at_ms; seq } ->
        Hashtbl.replace tbl seq { seq; joined_ms = at_ms; departed_ms = None; departure = None }
      | Leave { at_ms; seq } | Move { at_ms; seq } | Crash { at_ms; seq } ->
        (match Hashtbl.find_opt tbl seq with
         | None -> ()
         | Some s ->
           let departure =
             match ev with
             | Leave _ -> Some `Leave
             | Move _ -> Some `Move
             | Crash _ -> Some `Crash
             | Join _ -> None
           in
           Hashtbl.replace tbl seq { s with departed_ms = Some at_ms; departure }))
    events;
  Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
  |> List.sort (fun a b -> compare a.seq b.seq)

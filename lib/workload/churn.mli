(** Churn traces: timed join/leave/move/crash event sequences.

    Drives the failure-recovery, mobility and churn-campaign experiments:
    sessions arrive as a Poisson process, hold for exponentially-distributed
    lifetimes, and departures split into relocations (mobility), graceful
    leaves and silent crashes. *)

type event =
  | Join of { at_ms : float; seq : int }
  | Leave of { at_ms : float; seq : int }
  | Move of { at_ms : float; seq : int }
  | Crash of { at_ms : float; seq : int }
(** [seq] identifies the session whose host joins/leaves/moves/crashes. *)

val generate :
  Rofl_util.Prng.t ->
  horizon_ms:float ->
  arrival_rate_per_s:float ->
  mean_lifetime_s:float ->
  move_fraction:float ->
  ?crash_fraction:float ->
  unit ->
  event list
(** Events sorted by time; every [Leave]/[Move]/[Crash] follows its
    session's [Join].  A departure is a [Move] with probability
    [move_fraction], a [Crash] with probability [crash_fraction]
    (default 0), otherwise a [Leave]; the two fractions must not sum past
    1. *)

val event_time : event -> float

val event_seq : event -> int

val count : event list -> int * int * int * int
(** (joins, leaves, moves, crashes). *)

type session = {
  seq : int;
  joined_ms : float;
  departed_ms : float option; (** [None] when the session outlives the horizon *)
  departure : [ `Leave | `Move | `Crash ] option;
}

val sessions : event list -> session list
(** Per-session view of a trace, sorted by [seq] — what a campaign replays
    and what the property tests measure lifetimes over. *)
